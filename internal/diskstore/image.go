package diskstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dsi/internal/obs"
	"dsi/internal/station"
	"dsi/internal/wire"
)

// The wire-cycle image file: the exact transmitter byte stream of a
// broadcast, laid out for O(1) mmap'd serving.
//
//	offset 0        magic "DSIMG\x00\x00\x01"
//	offset 8        slot records, channel 0 first, then channel 1, ...
//	                one record per per-channel cycle slot, fixed stride
//	                1 + 2 + SlotBytes:
//	                  [flags byte][payload length uint16 LE][payload,
//	                   zero-padded to SlotBytes]
//	                SlotBytes is Capacity on uncoded images and
//	                Capacity + wire.ParityHeaderSize on coded ones
//	                (parity packets carry their header on top of the
//	                capacity-sized symbol)
//	then            footer: JSON (imageFooter) — geometry, directory
//	                blob, FEC descriptor blob, station catalog meta
//	trailer (24B)   [footer length uint64 LE][footer FNV-1a uint64 LE]
//	                [trailer magic "DSIMGFTR"]
//
// PacketAt(ch, abs) is pure arithmetic into the mapping: the payload
// is a slice of the file, no per-packet allocation or copying.

var (
	imageMagic   = [8]byte{'D', 'S', 'I', 'M', 'G', 0, 0, 1}
	trailerMagic = [8]byte{'D', 'S', 'I', 'M', 'G', 'F', 'T', 'R'}
)

const trailerSize = 8 + 8 + 8

// imageFooter is the image's self-description, JSON-encoded between
// the slot records and the trailer.
type imageFooter struct {
	Capacity  int   `json:"capacity"`
	SlotBytes int   `json:"slot_bytes,omitempty"` // record payload width; 0 means Capacity
	ChanSlots []int `json:"chan_slots"`

	DirVersion uint32 `json:"dir_version,omitempty"`
	Dir        []byte `json:"dir,omitempty"`
	FECVersion uint32 `json:"fec_version,omitempty"`
	FECDesc    []byte `json:"fec_desc,omitempty"`

	Meta wire.StationMeta `json:"meta"`
}

// fnvSum is the trailer checksum over the footer bytes.
func fnvSum(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

const fnvOffset64, fnvPrime64 = 14695981039346656037, 1099511628211

// ImageInfo describes the broadcast being imaged.
type ImageInfo struct {
	Capacity  int
	SlotBytes int              // slot record payload width; 0 means Capacity
	ChanSlots []int            // per-channel cycle length in slots
	Meta      wire.StationMeta // catalog document (static fields)
}

// InfoFor derives ImageInfo for the known static transmitter types.
// The second result is false for sources whose cycle geometry the
// image layer cannot determine (e.g. a live Rebroadcaster, whose
// stream is not a fixed cycle). A coded source (non-nil FEC
// descriptor) widens the slot records for its parity packets.
func InfoFor(src station.PacketSource, meta wire.StationMeta) (ImageInfo, bool) {
	var info ImageInfo
	switch t := src.(type) {
	case *station.MultiTransmitter:
		slots := make([]int, t.Lay.Channels())
		for ch := range slots {
			slots[ch] = t.ChanSlots(ch)
		}
		info = ImageInfo{Capacity: t.Lay.X.Cfg.Capacity, ChanSlots: slots, Meta: meta}
	case *station.Transmitter:
		info = ImageInfo{Capacity: t.Capacity(), ChanSlots: []int{t.CycleSlots()}, Meta: meta}
	default:
		return ImageInfo{}, false
	}
	if fs, ok := src.(station.FECSource); ok {
		if desc, _ := fs.FECDescAt(0); desc != nil {
			info.SlotBytes = info.Capacity + wire.ParityHeaderSize
		}
	}
	return info, true
}

// WriteImage writes one full broadcast cycle of every channel of src
// as a wire-cycle image. src must be static (directory version 1,
// fixed cycles); parity slots of a coded source are imaged like any
// other slot, so FEC broadcasts serve from images unchanged.
func WriteImage(w io.Writer, src station.PacketSource, info ImageInfo) error {
	if info.Capacity < 8 {
		return fmt.Errorf("diskstore: image capacity %d too small", info.Capacity)
	}
	if len(info.ChanSlots) == 0 {
		return fmt.Errorf("diskstore: image needs at least one channel")
	}
	slotBytes := info.SlotBytes
	if slotBytes == 0 {
		slotBytes = info.Capacity
	}
	if slotBytes < info.Capacity || slotBytes > 0xffff {
		return fmt.Errorf("diskstore: slot payload width %d invalid for capacity %d", slotBytes, info.Capacity)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(imageMagic[:]); err != nil {
		return err
	}
	stride := 3 + slotBytes
	rec := make([]byte, stride)
	for ch, slots := range info.ChanSlots {
		if slots <= 0 {
			return fmt.Errorf("diskstore: channel %d has %d slots", ch, slots)
		}
		for slot := 0; slot < slots; slot++ {
			p, ver := src.PacketAt(ch, int64(slot))
			if ver != 1 {
				return fmt.Errorf("diskstore: channel %d slot %d served directory version %d; images need a static source", ch, slot, ver)
			}
			if int(p.Slot) != slot || int(p.Ch) != ch {
				return fmt.Errorf("diskstore: channel %d slot %d: source stamped packet (ch=%d, slot=%d)",
					ch, slot, p.Ch, p.Slot)
			}
			if len(p.Payload) > slotBytes {
				return fmt.Errorf("diskstore: channel %d slot %d: payload %dB exceeds slot width %d",
					ch, slot, len(p.Payload), slotBytes)
			}
			for i := range rec {
				rec[i] = 0
			}
			rec[0] = p.Flags
			binary.LittleEndian.PutUint16(rec[1:3], uint16(len(p.Payload)))
			copy(rec[3:], p.Payload)
			if _, err := bw.Write(rec); err != nil {
				return err
			}
		}
	}

	foot := imageFooter{Capacity: info.Capacity, ChanSlots: info.ChanSlots, Meta: info.Meta}
	if slotBytes != info.Capacity {
		foot.SlotBytes = slotBytes
	}
	foot.Dir, foot.DirVersion = src.DirectoryAt(0)
	if fs, ok := src.(station.FECSource); ok {
		foot.FECDesc, foot.FECVersion = fs.FECDescAt(0)
	}
	fb, err := json.Marshal(foot)
	if err != nil {
		return err
	}
	if _, err := bw.Write(fb); err != nil {
		return err
	}
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:8], uint64(len(fb)))
	binary.LittleEndian.PutUint64(tr[8:16], fnvSum(fb))
	copy(tr[16:], trailerMagic[:])
	if _, err := bw.Write(tr[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteImageFile is WriteImage to a file path.
func WriteImageFile(path string, src station.PacketSource, info ImageInfo) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteImage(f, src, info); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ImageSource serves a wire-cycle image as a station.PacketSource (and
// FECSource): PacketAt is index arithmetic into the mapped file, the
// payload a zero-copy slice of it. Opening is O(footer) regardless of
// image size.
type ImageSource struct {
	m         *mapping
	capacity  int
	slotBytes int
	stride    int64
	chanOff   []int64 // byte offset of each channel's first slot record
	chanSlots []int

	dirVer  uint32
	dir     []byte
	fecVer  uint32
	fecDesc []byte
	meta    wire.StationMeta

	met *obs.StationMetrics
}

// OpenImage maps the image at path. The footer is validated (magic,
// trailer, checksum, geometry consistency) before any packet is
// served; a truncated or corrupt image is rejected here.
func OpenImage(path string) (*ImageSource, error) {
	m, err := openMapping(path)
	if err != nil {
		return nil, err
	}
	s, err := newImageSource(m)
	if err != nil {
		m.close()
		return nil, err
	}
	return s, nil
}

func newImageSource(m *mapping) (*ImageSource, error) {
	data := m.data
	if len(data) < len(imageMagic)+trailerSize {
		return nil, fmt.Errorf("diskstore: image of %d bytes is truncated", len(data))
	}
	if string(data[:8]) != string(imageMagic[:]) {
		return nil, fmt.Errorf("diskstore: bad image magic %q", data[:8])
	}
	tr := data[len(data)-trailerSize:]
	if string(tr[16:]) != string(trailerMagic[:]) {
		return nil, fmt.Errorf("diskstore: bad trailer magic %q (image truncated?)", tr[16:])
	}
	footLen := binary.LittleEndian.Uint64(tr[0:8])
	footSum := binary.LittleEndian.Uint64(tr[8:16])
	body := uint64(len(data) - len(imageMagic) - trailerSize)
	if footLen > body {
		return nil, fmt.Errorf("diskstore: footer length %d exceeds image body %d", footLen, body)
	}
	fb := data[uint64(len(data))-trailerSize-footLen : len(data)-trailerSize]
	if got := fnvSum(fb); got != footSum {
		return nil, fmt.Errorf("diskstore: footer checksum %#x != trailer %#x (image corrupt)", got, footSum)
	}
	var foot imageFooter
	if err := json.Unmarshal(fb, &foot); err != nil {
		return nil, fmt.Errorf("diskstore: footer: %w", err)
	}
	if foot.Capacity < 8 {
		return nil, fmt.Errorf("diskstore: footer capacity %d invalid", foot.Capacity)
	}
	if len(foot.ChanSlots) == 0 {
		return nil, fmt.Errorf("diskstore: footer has no channels")
	}
	slotBytes := foot.SlotBytes
	if slotBytes == 0 {
		slotBytes = foot.Capacity
	}
	if slotBytes < foot.Capacity || slotBytes > 0xffff {
		return nil, fmt.Errorf("diskstore: footer slot width %d invalid for capacity %d", slotBytes, foot.Capacity)
	}
	s := &ImageSource{
		m: m, capacity: foot.Capacity, slotBytes: slotBytes, stride: int64(3 + slotBytes),
		chanSlots: foot.ChanSlots,
		dirVer:    foot.DirVersion, dir: foot.Dir,
		fecVer: foot.FECVersion, fecDesc: foot.FECDesc,
		meta: foot.Meta,
	}
	s.chanOff = make([]int64, len(foot.ChanSlots))
	off := int64(len(imageMagic))
	for ch, slots := range foot.ChanSlots {
		if slots <= 0 {
			return nil, fmt.Errorf("diskstore: footer channel %d has %d slots", ch, slots)
		}
		s.chanOff[ch] = off
		off += int64(slots) * s.stride
	}
	if want := off + int64(footLen) + trailerSize; want != int64(len(data)) {
		return nil, fmt.Errorf("diskstore: image is %d bytes, footer geometry implies %d (truncated or corrupt)",
			len(data), want)
	}
	return s, nil
}

// Close unmaps the image.
func (s *ImageSource) Close() error { return s.m.close() }

// SetObs installs the station metric bundle (nil counts nothing).
func (s *ImageSource) SetObs(m *obs.StationMetrics) { s.met = m }

// Channels returns the image's channel count.
func (s *ImageSource) Channels() int { return len(s.chanSlots) }

// ChanSlots returns channel ch's cycle length in slots.
func (s *ImageSource) ChanSlots(ch int) int { return s.chanSlots[ch] }

// Capacity returns the image's packet capacity in bytes.
func (s *ImageSource) Capacity() int { return s.capacity }

// Meta returns the catalog document baked into the image (static
// fields only; a serving daemon fills the live ones).
func (s *ImageSource) Meta() wire.StationMeta { return s.meta }

// PacketAt implements station.PacketSource by slicing the mapping.
func (s *ImageSource) PacketAt(ch int, abs int64) (station.Packet, uint32) {
	s.met.PacketEmitted(ch)
	slot := abs % int64(s.chanSlots[ch])
	rec := s.m.data[s.chanOff[ch]+slot*s.stride:]
	p := station.Packet{Ch: uint8(ch), Slot: uint32(slot), Flags: rec[0]}
	if n := int(binary.LittleEndian.Uint16(rec[1:3])); n > 0 && n <= s.slotBytes {
		p.Payload = rec[3 : 3+n : 3+n]
	}
	return p, 1
}

// DirectoryAt implements station.PacketSource from the footer blob.
func (s *ImageSource) DirectoryAt(int64) ([]byte, uint32) {
	if s.dir == nil {
		return nil, 1
	}
	return s.dir, s.dirVer
}

// FECDescAt implements station.FECSource from the footer blob.
func (s *ImageSource) FECDescAt(int64) ([]byte, uint32) {
	if s.fecDesc == nil {
		return nil, 1
	}
	return s.fecDesc, s.fecVer
}

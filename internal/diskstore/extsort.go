package diskstore

import (
	"bufio"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Codec serializes one fixed-width record type into exactly Size
// bytes. Put must fill dst[:Size]; Get must read src[:Size]. Records
// with the same encoding must compare equal under the sorter's less
// function, since spilled runs round-trip through the codec.
type Codec[T any] struct {
	Size int
	Put  func(dst []byte, v T)
	Get  func(src []byte) T
}

// DefaultBudget is the per-sorter in-heap record budget used when a
// Sorter is created with budget <= 0. It bounds memory at
// budget*Codec.Size bytes plus O(runs) merge buffers.
const DefaultBudget = 1 << 20

// mergeFanIn caps how many spilled runs a single merge pass reads at
// once; beyond it the sorter pre-merges groups of runs into longer
// runs so the final pass stays within the file-descriptor and
// read-buffer budget.
const mergeFanIn = 64

// runReadBuf sizes the bufio reader over each spilled run during a
// merge.
const runReadBuf = 256 << 10

// Sorter is a bounded-memory external sorter over fixed-width records.
// Add buffers records up to the budget, spilling sorted runs to temp
// files in dir; Merge returns a Stream yielding the globally sorted
// sequence. The sort is stable: records that compare equal emerge in
// insertion order (runs are sorted stably and the k-way merge breaks
// ties by run age).
type Sorter[T any] struct {
	dir    string
	codec  Codec[T]
	less   func(a, b T) bool
	budget int

	buf    []T
	runs   []*os.File
	n      int64
	merged bool
	closed bool
}

// NewSorter creates a sorter spilling runs into dir (which must
// exist). budget <= 0 selects DefaultBudget.
func NewSorter[T any](dir string, codec Codec[T], less func(a, b T) bool, budget int) (*Sorter[T], error) {
	if codec.Size <= 0 || codec.Put == nil || codec.Get == nil {
		return nil, errors.New("diskstore: codec needs Size>0, Put, Get")
	}
	if less == nil {
		return nil, errors.New("diskstore: nil comparator")
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Sorter[T]{dir: dir, codec: codec, less: less, budget: budget}, nil
}

// Add buffers one record, spilling a sorted run when the buffer
// reaches the budget.
func (s *Sorter[T]) Add(v T) error {
	if s.merged || s.closed {
		return errors.New("diskstore: Add after Merge/Close")
	}
	s.buf = append(s.buf, v)
	s.n++
	if len(s.buf) >= s.budget {
		return s.spill()
	}
	return nil
}

// Len reports how many records have been added.
func (s *Sorter[T]) Len() int64 { return s.n }

// Spilled reports how many runs have gone to disk so far.
func (s *Sorter[T]) Spilled() int { return len(s.runs) }

func (s *Sorter[T]) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
	f, err := os.CreateTemp(s.dir, "extsort-*.run")
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, runReadBuf)
	rec := make([]byte, s.codec.Size)
	for _, v := range s.buf {
		s.codec.Put(rec, v)
		if _, err := w.Write(rec); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	s.runs = append(s.runs, f)
	s.buf = s.buf[:0]
	return nil
}

// Merge finishes ingestion and returns the globally sorted stream.
// When nothing spilled, the stream iterates the in-memory buffer; the
// sorter owns the returned stream's resources until Close.
func (s *Sorter[T]) Merge() (*Stream[T], error) {
	if s.merged || s.closed {
		return nil, errors.New("diskstore: Merge after Merge/Close")
	}
	s.merged = true
	if len(s.runs) == 0 {
		sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
		return &Stream[T]{mem: s.buf}, nil
	}
	if err := s.spill(); err != nil {
		return nil, err
	}
	s.buf = nil
	for len(s.runs) > mergeFanIn {
		if err := s.compact(); err != nil {
			return nil, err
		}
	}
	return s.streamRuns(s.runs)
}

// compact merges the oldest mergeFanIn runs into one longer run that
// takes their place at the front; run order still encodes insertion
// age because the merged group predates every surviving run.
func (s *Sorter[T]) compact() error {
	group := s.runs[:mergeFanIn]
	st, err := s.streamRuns(group)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(s.dir, "extsort-*.run")
	if err != nil {
		st.release()
		return err
	}
	w := bufio.NewWriterSize(f, runReadBuf)
	rec := make([]byte, s.codec.Size)
	for {
		v, ok := st.Next()
		if !ok {
			break
		}
		s.codec.Put(rec, v)
		if _, err := w.Write(rec); err != nil {
			st.release()
			f.Close()
			os.Remove(f.Name())
			return err
		}
	}
	if err := st.Err(); err != nil {
		st.release()
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := w.Flush(); err != nil {
		st.release()
		f.Close()
		os.Remove(f.Name())
		return err
	}
	st.release()
	for _, r := range group {
		r.Close()
		os.Remove(r.Name())
	}
	s.runs = append([]*os.File{f}, s.runs[mergeFanIn:]...)
	return nil
}

func (s *Sorter[T]) streamRuns(runs []*os.File) (*Stream[T], error) {
	st := &Stream[T]{codec: s.codec, less: s.less}
	for i, f := range runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		c := &cursor[T]{age: i, r: bufio.NewReaderSize(f, runReadBuf), rec: make([]byte, s.codec.Size)}
		ok, err := c.advance(s.codec)
		if err != nil {
			return nil, err
		}
		if ok {
			st.h = append(st.h, c)
		}
	}
	heap.Init((*cursorHeap[T])(st))
	return st, nil
}

// Close releases the sorter's temp files. Streams returned by Merge
// must not be used afterwards.
func (s *Sorter[T]) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, f := range s.runs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		if err := os.Remove(f.Name()); err != nil && first == nil {
			first = fmt.Errorf("remove %s: %w", f.Name(), err)
		}
	}
	s.runs = nil
	s.buf = nil
	return first
}

// Stream yields records in sorted order. Next returns false at end of
// stream or on error; check Err after the loop.
type Stream[T any] struct {
	// in-memory fast path
	mem []T
	pos int

	// k-way merge path
	codec Codec[T]
	less  func(a, b T) bool
	h     []*cursor[T]
	err   error
}

type cursor[T any] struct {
	age int
	r   *bufio.Reader
	rec []byte
	v   T
	eof bool
}

func (c *cursor[T]) advance(codec Codec[T]) (bool, error) {
	if _, err := io.ReadFull(c.r, c.rec); err != nil {
		if err == io.EOF {
			c.eof = true
			return false, nil
		}
		return false, err
	}
	c.v = codec.Get(c.rec)
	return true, nil
}

// Next yields the next record in sorted order.
func (st *Stream[T]) Next() (T, bool) {
	if st.mem != nil || st.h == nil {
		if st.pos < len(st.mem) {
			v := st.mem[st.pos]
			st.pos++
			return v, true
		}
		var zero T
		return zero, false
	}
	if len(st.h) == 0 || st.err != nil {
		var zero T
		return zero, false
	}
	c := st.h[0]
	v := c.v
	ok, err := c.advance(st.codec)
	switch {
	case err != nil:
		st.err = err
	case ok:
		heap.Fix((*cursorHeap[T])(st), 0)
	default:
		heap.Pop((*cursorHeap[T])(st))
	}
	return v, true
}

// Err reports the first read error hit while merging.
func (st *Stream[T]) Err() error { return st.err }

func (st *Stream[T]) release() { st.h = nil }

// cursorHeap orders merge cursors by record, breaking ties by run age
// so the overall sort is stable.
type cursorHeap[T any] Stream[T]

func (h *cursorHeap[T]) Len() int { return len(h.h) }
func (h *cursorHeap[T]) Less(i, j int) bool {
	a, b := h.h[i], h.h[j]
	if h.less(a.v, b.v) {
		return true
	}
	if h.less(b.v, a.v) {
		return false
	}
	return a.age < b.age
}
func (h *cursorHeap[T]) Swap(i, j int)      { h.h[i], h.h[j] = h.h[j], h.h[i] }
func (h *cursorHeap[T]) Push(x interface{}) { h.h = append(h.h, x.(*cursor[T])) }
func (h *cursorHeap[T]) Pop() interface{} {
	old := h.h
	n := len(old)
	x := old[n-1]
	h.h = old[:n-1]
	return x
}

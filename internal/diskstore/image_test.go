package diskstore

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
	"dsi/internal/station"
	"dsi/internal/wire"
)

func packetEq(a, b station.Packet) bool {
	return a.Ch == b.Ch && a.Slot == b.Slot && a.Flags == b.Flags && bytes.Equal(a.Payload, b.Payload)
}

// comparePackets walks every channel's full cycle on both sources and
// fails on the first differing packet.
func comparePackets(t *testing.T, want, got station.PacketSource, chanSlots []int) {
	t.Helper()
	for ch, slots := range chanSlots {
		for slot := 0; slot < slots; slot++ {
			pw, vw := want.PacketAt(ch, int64(slot))
			pg, vg := got.PacketAt(ch, int64(slot))
			if vw != vg {
				t.Fatalf("ch %d slot %d: version %d != %d", ch, slot, vg, vw)
			}
			if !packetEq(pw, pg) {
				t.Fatalf("ch %d slot %d: packet %+v != %+v", ch, slot, pg, pw)
			}
		}
		// Wrap-around addressing must agree too.
		pw, _ := want.PacketAt(ch, int64(slots)+3)
		pg, _ := got.PacketAt(ch, int64(slots)+3)
		if !packetEq(pw, pg) {
			t.Fatalf("ch %d: wrapped slot disagrees", ch)
		}
	}
}

// TestStreamImageIdentity is the tentpole regression: the image built
// out-of-core (external sort, sidecar files, streaming source) must be
// byte-identical to the image of the in-memory transmitter over the
// same dataset — and its packets identical to the transmitter's.
func TestStreamImageIdentity(t *testing.T) {
	cases := []struct {
		n        int
		order    uint
		capacity int
		objBytes int
		segments int
		budget   int
	}{
		{n: 300, order: 7, capacity: 64, objBytes: 1024, segments: 1, budget: 37},   // spills many runs
		{n: 500, order: 8, capacity: 128, objBytes: 256, segments: 1, budget: 0},    // in-memory fast path
		{n: 400, order: 8, capacity: 64, objBytes: 1024, segments: 2, budget: 64},   // reorganized broadcast
		{n: 257, order: 8, capacity: 512, objBytes: 1024, segments: 1, budget: 100}, // multi-object frames
	}
	for _, tc := range cases {
		cfg := dsi.Config{Capacity: tc.capacity, Segments: tc.segments, ObjectBytes: tc.objBytes}
		ds := dataset.Uniform(tc.n, tc.order, 42)
		x, err := dsi.Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := station.NewTransmitter(x)
		if err != nil {
			t.Fatal(err)
		}
		meta := wire.StationMeta{
			Dataset:  wire.StationDataset{Kind: "uniform", N: tc.n, Order: tc.order, Seed: 42, Sum: ds.Checksum()},
			Capacity: x.Cfg.Capacity, Segments: x.Cfg.Segments, ObjectBytes: x.Cfg.ObjectBytes,
			Channels: 1, Scheduler: "single",
		}

		dir := t.TempDir()
		memPath := filepath.Join(dir, "mem.img")
		info, ok := InfoFor(tr, meta)
		if !ok {
			t.Fatal("InfoFor failed for a Transmitter")
		}
		if err := WriteImageFile(memPath, tr, info); err != nil {
			t.Fatal(err)
		}

		diskPath := filepath.Join(dir, "disk.img")
		stats, err := BuildImage(diskPath, UniformStream(tc.n, tc.order, 42),
			cfg, BuildOptions{Budget: tc.budget})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Checksum != ds.Checksum() {
			t.Fatalf("streaming checksum %#x != dataset checksum %#x", stats.Checksum, ds.Checksum())
		}
		if tc.budget > 0 && tc.n/tc.budget > 1 && stats.SpilledRuns < 2 {
			t.Fatalf("budget %d over %d objects spilled only %d runs", tc.budget, tc.n, stats.SpilledRuns)
		}

		memImg, err := os.ReadFile(memPath)
		if err != nil {
			t.Fatal(err)
		}
		diskImg, err := os.ReadFile(diskPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(memImg, diskImg) {
			t.Fatalf("case %+v: disk-built image differs from in-memory image (%d vs %d bytes)",
				tc, len(diskImg), len(memImg))
		}

		src, err := OpenImage(diskPath)
		if err != nil {
			t.Fatal(err)
		}
		comparePackets(t, tr, src, []int{tr.CycleSlots()})
		if got := src.Meta(); got.Dataset.Sum != ds.Checksum() {
			t.Fatalf("image meta checksum %#x != %#x", got.Dataset.Sum, ds.Checksum())
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRealStreamChecksum: the clustered stream must reproduce the
// in-memory REAL-like dataset exactly — same objects, same HC order,
// same checksum.
func TestRealStreamChecksum(t *testing.T) {
	ds := dataset.Clustered(dataset.DefaultRealConfig(7))
	ps := RealStream(7)
	if ps.N != ds.N() {
		t.Fatalf("stream N %d != dataset %d", ps.N, ds.N())
	}
	var recs []objRec
	ps.Gen(func(p spatial.Point, hc uint64) {
		recs = append(recs, objRec{X: p.X, Y: p.Y, HC: hc})
	})
	sort.Slice(recs, func(i, j int) bool { return recs[i].HC < recs[j].HC })
	sum := dataset.NewChecksumBuilder(ps.Order)
	for _, r := range recs {
		sum.Add(spatial.Point{X: r.X, Y: r.Y})
	}
	if got, want := sum.Sum(), ds.Checksum(); got != want {
		t.Fatalf("streamed checksum %#x != dataset checksum %#x", got, want)
	}
}

// TestMultiChannelImageIdentity: images of split, shard, and
// FEC-coded multi-channel transmitters serve bit-identical packets,
// directories, and FEC descriptors.
func TestMultiChannelImageIdentity(t *testing.T) {
	ds := dataset.Uniform(400, 8, 5)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	layouts := map[string]*dsi.Layout{}
	split, err := dsi.NewLayout(x, dsi.MultiConfig{Channels: 3, Scheduler: dsi.SchedSplit, SwitchSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	layouts["split"] = split
	shard, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2,
		ShardBounds: []int{0, x.NF / 3, 2 * x.NF / 3, x.NF},
	})
	if err != nil {
		t.Fatal(err)
	}
	layouts["shard"] = shard

	for name, lay := range layouts {
		for _, coded := range []bool{false, true} {
			var src station.PacketSource
			if coded {
				fsrc, err := station.NewMultiTransmitterFEC(lay, wire.FECConfig{
					Object: wire.FECCode{Groups: 4, Parity: 1},
					Table:  wire.FECCode{Groups: 1, Parity: 1},
				})
				if err != nil {
					t.Fatal(err)
				}
				src = fsrc
			} else {
				msrc, err := station.NewMultiTransmitter(lay)
				if err != nil {
					t.Fatal(err)
				}
				src = msrc
			}
			info, ok := InfoFor(src, wire.StationMeta{})
			if !ok {
				t.Fatalf("%s coded=%v: InfoFor failed", name, coded)
			}
			path := filepath.Join(t.TempDir(), "multi.img")
			if err := WriteImageFile(path, src, info); err != nil {
				t.Fatalf("%s coded=%v: %v", name, coded, err)
			}
			img, err := OpenImage(path)
			if err != nil {
				t.Fatalf("%s coded=%v: %v", name, coded, err)
			}
			comparePackets(t, src, img, info.ChanSlots)

			wantDir, wantVer := src.DirectoryAt(0)
			gotDir, gotVer := img.DirectoryAt(0)
			if !bytes.Equal(wantDir, gotDir) || wantVer != gotVer {
				t.Fatalf("%s coded=%v: directory mismatch", name, coded)
			}
			if fs, ok := src.(station.FECSource); ok {
				wantFEC, wantV := fs.FECDescAt(0)
				gotFEC, gotV := img.FECDescAt(0)
				if !bytes.Equal(wantFEC, gotFEC) || wantV != gotV {
					t.Fatalf("%s coded=%v: FEC descriptor mismatch", name, coded)
				}
			}
			if err := img.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestImageRejectsCorruption: every tampering mode must be refused at
// OpenImage, before a single packet is served.
func TestImageRejectsCorruption(t *testing.T) {
	ds := dataset.Uniform(120, 7, 3)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := station.NewTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := InfoFor(tr, wire.StationMeta{})
	dir := t.TempDir()
	good := filepath.Join(dir, "good.img")
	if err := WriteImageFile(good, tr, info); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	mutate := func(at int, b byte) []byte {
		c := append([]byte(nil), img...)
		c[at] ^= b
		return c
	}

	cases := map[string]string{
		"empty":          write("empty.img", nil),
		"tiny":           write("tiny.img", img[:10]),
		"truncated-body": write("tb.img", img[:len(img)/2]),
		"truncated-tail": write("tt.img", img[:len(img)-5]),
		"bad-magic":      write("bm.img", mutate(0, 0xff)),
		"bad-trailer":    write("bt.img", mutate(len(img)-1, 0xff)),
		"corrupt-footer": write("cf.img", mutate(len(img)-trailerSize-3, 0xff)),
		"bad-footlen":    write("bl.img", mutate(len(img)-trailerSize+1, 0xff)),
	}
	for name, path := range cases {
		if src, err := OpenImage(path); err == nil {
			src.Close()
			t.Errorf("%s: OpenImage accepted a corrupt image", name)
		}
	}

	// The pristine file still opens.
	src, err := OpenImage(good)
	if err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
	src.Close()
}

package diskstore

import (
	"path/filepath"
	"testing"

	"dsi/internal/bptree"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/rtree"
	"dsi/internal/spatial"
)

// buildSidecars runs a streaming image build with sidecars kept and
// returns the sorted-object file path plus the in-memory dataset for
// reference builds.
func buildSidecars(t *testing.T, n int, order uint, seed int64, budget int) (string, *dataset.Dataset) {
	t.Helper()
	dir := t.TempDir()
	img := filepath.Join(dir, "t.img")
	stats, err := BuildImage(img, UniformStream(n, order, seed),
		dsi.Config{Capacity: 64}, BuildOptions{Budget: budget, KeepSidecars: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ObjectsPath == "" {
		t.Fatal("KeepSidecars left no objects path")
	}
	return stats.ObjectsPath, dataset.Uniform(n, order, seed)
}

// TestBPTreeFileIdentity: the disk-built B+-tree node file must hold
// node-for-node what bptree.Build constructs over the same keys.
func TestBPTreeFileIdentity(t *testing.T) {
	for _, tc := range []struct{ n, fanout, budget int }{
		{n: 500, fanout: 3, budget: 64}, // several levels, spilled sort
		{n: 300, fanout: 7, budget: 0},
		{n: 4, fanout: 5, budget: 0}, // single-leaf root
	} {
		objPath, ds := buildSidecars(t, tc.n, 8, 11, tc.budget)
		treePath := objPath + ".bpt"
		if err := BuildBPTreeFile(treePath, objPath, tc.fanout); err != nil {
			t.Fatal(err)
		}

		keys := make([]uint64, ds.N())
		vals := make([]int, ds.N())
		for i, o := range ds.Objects {
			keys[i], vals[i] = o.HC, o.ID
		}
		want, err := bptree.Build(keys, vals, tc.fanout)
		if err != nil {
			t.Fatal(err)
		}

		tf, err := OpenBPTreeFile(treePath)
		if err != nil {
			t.Fatal(err)
		}
		if tf.Height() != want.Height() || tf.NodeCount() != want.NodeCount() || tf.Fanout() != want.Fanout {
			t.Fatalf("tree shape (h=%d, nodes=%d, fanout=%d) != (h=%d, nodes=%d, fanout=%d)",
				tf.Height(), tf.NodeCount(), tf.Fanout(), want.Height(), want.NodeCount(), want.Fanout)
		}
		if tf.RootID() != want.Root().ID {
			t.Fatalf("root ID %d != %d", tf.RootID(), want.Root().ID)
		}
		for id := 0; id < want.NodeCount(); id++ {
			wn := want.Node(id)
			level, gk, gr := tf.BPTreeNode(id)
			if level != wn.Level {
				t.Fatalf("node %d: level %d != %d", id, level, wn.Level)
			}
			if len(gk) != len(wn.Keys) {
				t.Fatalf("node %d: %d keys != %d", id, len(gk), len(wn.Keys))
			}
			for i := range gk {
				if gk[i] != wn.Keys[i] {
					t.Fatalf("node %d key %d: %d != %d", id, i, gk[i], wn.Keys[i])
				}
				wantRef := int64(0)
				if wn.Level == 0 {
					wantRef = int64(wn.Vals[i])
				} else {
					wantRef = int64(wn.Children[i])
				}
				if gr[i] != wantRef {
					t.Fatalf("node %d ref %d: %d != %d", id, i, gr[i], wantRef)
				}
			}
		}

		// The node file answers lookups directly.
		for _, o := range ds.Objects[:min(50, ds.N())] {
			got, ok := tf.Lookup(o.HC)
			if !ok || got != int64(o.ID) {
				t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", o.HC, got, ok, o.ID)
			}
		}
		if _, ok := tf.Lookup(^uint64(0)); ok {
			t.Fatal("Lookup found a key that does not exist")
		}
		if err := tf.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRTreeFileIdentity: the disk-built R-tree node file must hold
// node-for-node what rtree.Build packs over the same dataset.
func TestRTreeFileIdentity(t *testing.T) {
	for _, tc := range []struct{ n, fanout, budget int }{
		{n: 600, fanout: 3, budget: 70}, // several levels, spilled external leaf sort
		{n: 350, fanout: 10, budget: 0},
		{n: 3, fanout: 4, budget: 0}, // single-leaf root
	} {
		objPath, ds := buildSidecars(t, tc.n, 8, 23, tc.budget)
		treePath := objPath + ".rtr"
		if err := BuildRTreeFile(treePath, objPath, tc.fanout,
			BuildOptions{Budget: tc.budget}); err != nil {
			t.Fatal(err)
		}

		want, err := rtree.Build(ds, tc.fanout)
		if err != nil {
			t.Fatal(err)
		}

		tf, err := OpenRTreeFile(treePath)
		if err != nil {
			t.Fatal(err)
		}
		if tf.Height() != want.Height() || tf.NodeCount() != want.NodeCount() {
			t.Fatalf("tree shape (h=%d, nodes=%d) != (h=%d, nodes=%d)",
				tf.Height(), tf.NodeCount(), want.Height(), want.NodeCount())
		}
		for id := 0; id < want.NodeCount(); id++ {
			wn := want.Node(id)
			level, mbr, mbrs, refs := tf.RTreeNode(id)
			if level != wn.Level {
				t.Fatalf("node %d: level %d != %d", id, level, wn.Level)
			}
			if mbr != wn.MBR {
				t.Fatalf("node %d: MBR %v != %v", id, mbr, wn.MBR)
			}
			if len(mbrs) != len(wn.MBRs) {
				t.Fatalf("node %d: %d entries != %d", id, len(mbrs), len(wn.MBRs))
			}
			for i := range mbrs {
				if mbrs[i] != wn.MBRs[i] {
					t.Fatalf("node %d entry %d: MBR %v != %v", id, i, mbrs[i], wn.MBRs[i])
				}
				wantRef := int64(0)
				if wn.Level == 0 {
					wantRef = int64(wn.Objects[i])
				} else {
					wantRef = int64(wn.Children[i])
				}
				if refs[i] != wantRef {
					t.Fatalf("node %d ref %d: %d != %d", id, i, refs[i], wantRef)
				}
			}
		}

		// The node file answers window queries directly.
		for _, w := range []spatial.Rect{
			{MinX: 10, MinY: 10, MaxX: 120, MaxY: 90},
			{MinX: 0, MinY: 0, MaxX: 255, MaxY: 255},
			{MinX: 200, MinY: 200, MaxX: 201, MaxY: 201},
		} {
			wantIDs := want.Window(w)
			gotIDs := tf.Window(w)
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("Window(%v): %d hits != %d", w, len(gotIDs), len(wantIDs))
			}
			for i := range gotIDs {
				if gotIDs[i] != int64(wantIDs[i]) {
					t.Fatalf("Window(%v) hit %d: %d != %d", w, i, gotIDs[i], wantIDs[i])
				}
			}
		}
		if err := tf.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// WireReceiver: the byte-level implementation of dsi.Receiver. Where
// dsi.SimReceiver serves content from the simulator's precomputed
// tables and the dataset, a WireReceiver receives the actual packets a
// station puts on air and decodes their payloads with package wire —
// index tables (classic and multi-channel formats), object headers,
// and the versioned shard directory. Every reception cost is paid
// through the same broadcast.Tuner the simulator uses, so loss applies
// to real bytes: a corrupted or undecodable payload costs its tuning
// packets and yields no knowledge, exactly like a lost packet in the
// simulator — and, unlike the simulator, the shard directory itself
// must cross the lossy air before a client can follow a schedule swap.
//
// Over a static transmitter the wire path is bit-identical to the
// simulator fast path: both read the same slots under the same loss
// process, and a well-formed stream decodes to exactly the precomputed
// content (regression-enforced by the wireloss experiment). The paths
// diverge only where bytes carry information the simulator hands out
// for free: directory swaps cost directory packets, stale or
// mid-transition channels serve payloads the receiver cannot interpret
// yet, and the receiver's clock follows the transmitter's true cycle
// anchors after a seam cutover.

package station

import (
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/wire"
)

// PacketSource is a broadcast station as seen by a byte-level
// receiver: the packet each channel transmits at an absolute slot,
// tagged with the directory version governing it, and the versioned
// shard directory on air. Rebroadcaster implements it directly;
// MultiTransmitter and Transmitter are static single-version sources.
type PacketSource interface {
	// PacketAt returns the packet channel ch transmits at absolute
	// slot abs and the directory version its encoding belongs to.
	PacketAt(ch int, abs int64) (Packet, uint32)
	// DirectoryAt returns the versioned shard directory on air at abs
	// (nil when the broadcast ships none, e.g. single-channel layouts).
	DirectoryAt(abs int64) ([]byte, uint32)
}

// PacketAt implements PacketSource: a static transmitter serves one
// schedule forever, anchored at slot 0 as directory version 1.
func (t *MultiTransmitter) PacketAt(ch int, abs int64) (Packet, uint32) {
	t.met.PacketEmitted(ch)
	return t.Packet(ch, int(abs%int64(t.ChanSlots(ch)))), 1
}

// FECDescAt implements FECSource: the transmitter's code encoded as
// version 1, nil for an uncoded broadcast.
func (t *MultiTransmitter) FECDescAt(int64) ([]byte, uint32) { return t.fecDesc, 1 }

// DirectoryAt implements PacketSource: the layout's directory encoded
// as version 1 anchored at slot 0, nil for layouts without one (the
// encoding is cached after the first call).
func (t *MultiTransmitter) DirectoryAt(int64) ([]byte, uint32) {
	t.dirOnce.Do(func() {
		if dir, err := wire.EncodeDirV(t.Lay, 1, 0); err == nil {
			t.dir = dir
		}
	})
	return t.dir, 1
}

// PacketAt implements PacketSource for the classic single-channel
// transmitter.
func (t *Transmitter) PacketAt(ch int, abs int64) (Packet, uint32) {
	if ch != 0 {
		panic(fmt.Sprintf("station: packet request for channel %d of a single-channel transmitter", ch))
	}
	t.met.PacketEmitted(0)
	return t.Packet(int(abs % int64(t.CycleSlots()))), 1
}

// DirectoryAt implements PacketSource: a single-channel broadcast
// ships no shard directory.
func (t *Transmitter) DirectoryAt(int64) ([]byte, uint32) { return nil, 1 }

// FECDescAt implements FECSource: the transmitter's code encoded as
// version 1, nil for an uncoded broadcast.
func (t *Transmitter) FECDescAt(int64) ([]byte, uint32) { return t.fecDesc, 1 }

// WireReceiver implements dsi.Receiver over a PacketSource. It is
// constructed with the layout (and directory version) the client knows
// a priori — its catalog — which may be stale with respect to the
// source: the first navigation steps then pay for receiving the
// current directory over the air before content decodes again.
//
// Supported layouts: the classic single channel (wire.DecodeTable) and
// the index/data split and sharded multi-channel layouts
// (wire.DecodeTableMC plus the shard directory). Stripe layouts have
// no dedicated index channel and no directory; they are rejected.
type WireReceiver struct {
	x   *dsi.Index
	lay *dsi.Layout
	tu  *broadcast.Tuner
	src PacketSource

	ver        uint32
	single     bool
	dirPackets int
	framesOn   []int
	startPos   []int    // per data channel: first cycle position carried
	spanLo     []uint64 // per channel: HC span low bound (shard layouts)
	spanHi     []uint64

	// Decode scratch. tab is overwritten only by a fully validated
	// table read — the client caches the returned pointer (lastTable)
	// beyond the next call, so a failed read must leave the previous
	// content intact. entryScratch is the build buffer for the next
	// read's entries; it swaps with tab.Entries on success, so the
	// steady state recycles two slices instead of allocating per read.
	tab          dsi.Table
	entryScratch []dsi.TableEntry
	tabBuf       []byte
}

// NewWireReceiver returns a byte-level receiver tuned to the layout's
// start channel at the given absolute slot. lay and version are the
// client's a-priori catalog: the channel layout it believes is on air
// and the directory version that layout corresponds to (1 for a static
// transmitter; one version behind the air models a stale tune-in,
// which converges once the receiver has received the current
// directory — a catalog more than one version stale cannot recover
// the air's cycle anchors and panics at the first Poll).
func NewWireReceiver(lay *dsi.Layout, version uint32, src PacketSource, probeSlot int64, loss *broadcast.LossModel) (*WireReceiver, error) {
	single := lay.Channels() == 1
	if !single && (lay.Sched != dsi.SchedSplit && lay.Sched != dsi.SchedShard) {
		return nil, fmt.Errorf("station: byte-level reception needs a dedicated index channel; %v layouts are unsupported", lay.Sched)
	}
	r := &WireReceiver{
		x:      lay.X,
		lay:    lay,
		tu:     broadcast.NewAirTuner(lay.Air, lay.StartCh, probeSlot, loss),
		src:    src,
		ver:    version,
		single: single,
	}
	r.adoptGeometry(lay)
	return r, nil
}

// adoptGeometry recomputes the per-channel decode tables for a layout.
func (r *WireReceiver) adoptGeometry(lay *dsi.Layout) {
	r.lay = lay
	n := lay.Channels()
	r.dirPackets = broadcast.PacketsFor(wire.DirVSize(n), r.x.Cfg.Capacity)
	if r.single {
		return
	}
	if r.framesOn == nil {
		r.framesOn = make([]int, n)
		r.startPos = make([]int, n)
		r.spanLo = make([]uint64, n)
		r.spanHi = make([]uint64, n)
	}
	bounds := lay.ShardBounds()
	for ch := 0; ch < n; ch++ {
		r.framesOn[ch] = lay.FramesOn(ch)
		r.startPos[ch] = -1
		r.spanLo[ch], r.spanHi[ch] = 0, r.x.DS.Curve.Size()
		if ch == lay.StartCh {
			continue
		}
		pos, _, ok := lay.SlotData(ch, 0)
		if ok {
			r.startPos[ch] = pos
		}
		if bounds != nil {
			// Shard channels carry one contiguous HC span; its split
			// values are catalog knowledge (they ride the directory), so
			// the receiver can sanity-check table pointers against them.
			r.spanLo[ch] = r.x.MinHC(bounds[ch-1])
			if ch < n-1 {
				r.spanHi[ch] = r.x.MinHC(bounds[ch])
			}
		}
	}
}

// Layout returns the layout the receiver currently assumes on air.
func (r *WireReceiver) Layout() *dsi.Layout { return r.lay }

// Version returns the shard-directory version the receiver has most
// recently adopted.
func (r *WireReceiver) Version() uint32 { return r.ver }

// Now returns the absolute packet clock.
func (r *WireReceiver) Now() int64 { return r.tu.Now() }

// Pos returns the cycle position on the current channel, relative to
// the channel's adopted phase anchor.
func (r *WireReceiver) Pos() int { return r.tu.Pos() }

// Channel returns the channel the radio is tuned to.
func (r *WireReceiver) Channel() int { return r.tu.Channel() }

// PhaseOf returns the absolute slot at which channel ch's adopted
// cycle has position 0 (the cutover seam after a swap).
func (r *WireReceiver) PhaseOf(ch int) int64 { return r.tu.PhaseOf(ch) }

// Stats returns the metrics accumulated since the last Reset.
func (r *WireReceiver) Stats() broadcast.Stats { return r.tu.Stats() }

// Tune retunes the radio to channel ch.
func (r *WireReceiver) Tune(ch int) { r.tu.Switch(ch) }

// DozeUntilPos sleeps to the next occurrence of the position under the
// current channel's phase anchor.
func (r *WireReceiver) DozeUntilPos(pos int) { r.tu.DozeUntilPos(pos) }

// Next receives one packet at the current slot (the probe: only the
// framing matters, which any version serves).
func (r *WireReceiver) Next() (broadcast.Slot, bool) { return r.tu.Read() }

// read receives the byte payload at the current slot: the source's
// packet plus its governing version, with the tuner charging the cost
// and drawing the loss. ok is false when the packet was corrupted or
// belongs to a directory version the receiver has not adopted (a stale
// or mid-transition channel — undecodable until the catalogs agree).
func (r *WireReceiver) read() (Packet, bool) {
	pkt, pver := r.src.PacketAt(r.tu.Channel(), r.tu.Now())
	_, good := r.tu.Read()
	return pkt, good && pver == r.ver
}

// Table receives and decodes the index table of the frame at cycle
// position pos. All TablePackets packets are consumed (the cost is
// paid) even when an early one is corrupt; ok is false on any loss,
// truncation, or a payload that fails the wire format's validation —
// including pointers whose channel id contradicts the shard catalog.
func (r *WireReceiver) Table(pos int) (*dsi.Table, bool) {
	x := r.x
	buf := r.tabBuf[:0]
	ok := true
	for i := 0; i < x.TablePackets; i++ {
		pkt, good := r.read()
		if !good || pkt.Flags&flagIndex == 0 {
			ok = false
			continue
		}
		buf = append(buf, pkt.Payload...)
	}
	r.tabBuf = buf
	if !ok {
		return nil, false
	}
	return r.decodeTable(buf, pos)
}

// decodeTable parses a fully assembled table payload (the concatenated
// table packets of position pos) and publishes it into the receiver's
// double-buffered scratch. Shared by the plain packet loop above and
// the FEC receiver's recovery path, so a reconstructed table passes
// exactly the validation a cleanly received one does.
func (r *WireReceiver) decodeTable(buf []byte, pos int) (*dsi.Table, bool) {
	x := r.x
	if r.single {
		t, err := wire.DecodeTableAppend(buf, pos, x.NF, r.entryScratch[:0])
		if err != nil {
			return nil, false
		}
		r.entryScratch = r.tab.Entries
		r.tab = t
		return &r.tab, true
	}
	own, entries, err := wire.DecodeTableMC(buf, r.framesOn)
	if err != nil {
		return nil, false
	}
	mapped := r.entryScratch[:0]
	for _, e := range entries {
		ch := int(e.Ch)
		if r.startPos[ch] < 0 {
			return nil, false // data pointer aimed at the index channel
		}
		tp := r.startPos[ch] + int(e.Frame)
		if tp >= x.NF {
			return nil, false
		}
		if e.MinHC < r.spanLo[ch] || e.MinHC >= r.spanHi[ch] {
			// The entry's HC value lies outside the HC span its channel
			// id claims to carry: a mislabelled pointer. Absorbing it
			// would poison the knowledge base with a false frame fact,
			// so the whole table is treated as corrupt.
			return nil, false
		}
		mapped = append(mapped, dsi.TableEntry{TargetPos: tp, MinHC: e.MinHC})
	}
	// Commit: the previously published entries become the next build
	// buffer (nothing references them once tab is overwritten).
	r.entryScratch = r.tab.Entries
	r.tab = dsi.Table{Pos: pos, OwnHC: own, Entries: mapped}
	return &r.tab, true
}

// Header receives and decodes one object-header packet.
func (r *WireReceiver) Header(pos, o int) (uint64, bool) {
	pkt, good := r.read()
	if !good || pkt.Flags&flagObjectStart == 0 {
		return 0, false
	}
	h, err := wire.DecodeHeader(pkt.Payload)
	if err != nil {
		return 0, false
	}
	return h.HC, true
}

// Object receives the object's remaining packets, reporting whether
// every one arrived intact under the adopted directory version.
func (r *WireReceiver) Object(pos, o, skip int) bool {
	ok := true
	for i := skip; i < r.x.ObjPackets; i++ {
		if _, good := r.read(); !good {
			ok = false
		}
	}
	return ok
}

// Poll checks for a shard-directory version bump and, when one is on
// air, attempts to receive the directory: dirPackets slots of tuning
// with the loss process applied — the directory is subject to exactly
// the link errors everything else is. A lost packet abandons the
// attempt (the next navigation step retries); an intact, valid
// directory is adopted: the receiver re-anchors every channel at its
// cutover seam (computed from its previous geometry plus the announced
// seam slot, the same arithmetic the transmitter uses) and returns the
// new layout for the client to re-seed onto.
func (r *WireReceiver) Poll() (*dsi.Layout, bool) {
	dir, over := r.src.DirectoryAt(r.tu.Now())
	// Only a NEWER version is a bump: a reused receiver re-tuned to a
	// slot before an in-flight swap's seam legitimately sees the older
	// directory still on air there and keeps the catalog it holds.
	if dir == nil || over <= r.ver || r.single {
		return nil, false
	}
	ok := true
	for i := 0; i < r.dirPackets; i++ {
		if _, good := r.tu.Read(); !good {
			ok = false
		}
	}
	if !ok {
		return nil, false
	}
	ver, seam, entries, err := wire.DecodeDirV(dir)
	if err != nil || len(entries) != r.lay.Channels() || ver <= r.ver {
		return nil, false
	}
	if ver != r.ver+1 {
		// The cutover anchors below are derived from the receiver's own
		// catalog geometry, which is only the geometry the transmitter
		// actually cut over from when exactly one swap separates catalog
		// and air (the Rebroadcaster's one-in-flight-swap discipline).
		// A wider gap means the receiver slept through a whole directory
		// generation; adopting would anchor every channel wrong and wedge
		// all future decodes, so fail loudly instead.
		panic(fmt.Sprintf("station: wire receiver at directory version %d cannot follow version %d; re-tune with a current catalog", r.ver, ver))
	}
	lay, err := dsi.NewLayout(r.x, dsi.MultiConfig{
		Channels:    r.lay.Channels(),
		Scheduler:   dsi.SchedShard,
		SwitchSlots: r.lay.Cfg.SwitchSlots,
		ShardBounds: wire.BoundsFromDir(entries),
	})
	if err != nil {
		return nil, false
	}
	// Each channel's new cycle is anchored at its first old-cycle
	// boundary at or after the announced seam.
	phase := make([]int64, r.lay.Channels())
	for ch := range phase {
		l := int64(r.lay.ChanLen(ch))
		ph := r.tu.PhaseOf(ch)
		rel := seam - ph
		k := rel / l
		if rel%l != 0 {
			k++
		}
		phase[ch] = ph + k*l
	}
	r.ver = ver
	r.tu.RetunePhased(lay.Air, phase)
	r.adoptGeometry(lay)
	return lay, true
}

// Follow commits the client's re-seed onto a layout obtained from
// Poll (the receiver adopted it there; the two must stay in lockstep).
func (r *WireReceiver) Follow(lay *dsi.Layout) {
	if lay != r.lay {
		panic("station: wire receiver follows its own directory; Resync targets must come from Poll")
	}
}

// Reset re-tunes the receiver at the given absolute slot with fresh
// metrics. The adopted directory (layout, version, phase anchors) is
// schedule knowledge, not query state: it persists, so a reused
// session keeps decoding the stream it has already synchronized with.
func (r *WireReceiver) Reset(probeSlot int64, loss *broadcast.LossModel) {
	r.tu.Reset(probeSlot, loss)
}

// SetChannelLoss installs a per-channel loss model (validated by
// Layout.CheckLossChannel, like every receiver).
func (r *WireReceiver) SetChannelLoss(ch int, loss *broadcast.LossModel) error {
	if err := r.lay.CheckLossChannel(ch); err != nil {
		return err
	}
	r.tu.SetChannelLoss(ch, loss)
	return nil
}

package station

import (
	"strings"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
)

func buildLayout(t *testing.T, cfg dsi.Config, mc dsi.MultiConfig) *dsi.Layout {
	t.Helper()
	ds := dataset.Uniform(150, 6, 41)
	x, err := dsi.Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := dsi.NewLayout(x, mc)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func scanAll(t *testing.T, tx *MultiTransmitter) ([]MultiFrameInfo, error) {
	t.Helper()
	lay := tx.Lay
	streams := make([]<-chan Packet, lay.Channels())
	for ch := 0; ch < lay.Channels(); ch++ {
		c := make(chan Packet, 64)
		go tx.CycleChannel(ch, c)
		streams[ch] = c
	}
	return ScanMulti(lay, streams)
}

// TestMultiStreamIsSelfDescribing: for every scheduler and channel
// count, one cycle of raw per-channel packets must reconstruct the
// exact broadcast metadata — every frame's minimum HC value, its table
// pointers (channel ids included), and every object header.
func TestMultiStreamIsSelfDescribing(t *testing.T) {
	for _, mc := range []dsi.MultiConfig{
		{Channels: 1},
		{Channels: 2, Scheduler: dsi.SchedStripe},
		{Channels: 3, Scheduler: dsi.SchedStripe},
		{Channels: 2, Scheduler: dsi.SchedSplit},
		{Channels: 4, Scheduler: dsi.SchedSplit},
	} {
		lay := buildLayout(t, dsi.Config{Segments: 2}, mc)
		x := lay.X
		tx, err := NewMultiTransmitter(lay)
		if err != nil {
			t.Fatal(err)
		}
		frames, err := scanAll(t, tx)
		if err != nil {
			t.Fatalf("%v x%d: %v", mc.Scheduler, mc.Channels, err)
		}
		total := 0
		for pos, fi := range frames {
			f := x.PosToFrame(pos)
			if fi.MinHC != x.MinHC(f) {
				t.Fatalf("%v x%d pos %d: min HC %d, want %d", mc.Scheduler, mc.Channels, pos, fi.MinHC, x.MinHC(f))
			}
			first, num := x.FrameObjects(f)
			if len(fi.Headers) != num {
				t.Fatalf("%v x%d pos %d: %d headers, want %d", mc.Scheduler, mc.Channels, pos, len(fi.Headers), num)
			}
			for o, h := range fi.Headers {
				obj := x.DS.Objects[first+o]
				if h.HC != obj.HC || h.X != obj.P.X || h.Y != obj.P.Y {
					t.Fatalf("%v x%d pos %d obj %d: header %+v != object %+v", mc.Scheduler, mc.Channels, pos, o, h, obj)
				}
			}
			for i, e := range fi.Entries {
				target := x.TableAt(pos).Entries[i]
				wantCh, wantIdx := lay.DataFrameIndex(target.TargetPos)
				if int(e.Ch) != wantCh || int(e.Frame) != wantIdx || e.MinHC != target.MinHC {
					t.Fatalf("%v x%d pos %d entry %d: %+v, want (%d,%d,%d)",
						mc.Scheduler, mc.Channels, pos, i, e, wantCh, wantIdx, target.MinHC)
				}
			}
			total += len(fi.Headers)
		}
		if total != x.DS.N() {
			t.Fatalf("%v x%d: %d headers total, want %d", mc.Scheduler, mc.Channels, total, x.DS.N())
		}
	}
}

// corrupt streams one channel cycle with fn applied to each packet
// before delivery and returns ScanMulti's error.
func corrupt(t *testing.T, mc dsi.MultiConfig, fn func(ch int, p Packet) Packet) error {
	t.Helper()
	lay := buildLayout(t, dsi.Config{}, mc)
	tx, err := NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]<-chan Packet, lay.Channels())
	for ch := 0; ch < lay.Channels(); ch++ {
		c := make(chan Packet, 64)
		go func(ch int, out chan<- Packet) {
			for slot := 0; slot < lay.ChanLen(ch); slot++ {
				out <- fn(ch, tx.Packet(ch, slot))
			}
			close(out)
		}(ch, c)
		streams[ch] = c
	}
	_, err = ScanMulti(lay, streams)
	return err
}

// TestScanMultiErrorPaths: the receiver rejects streams that disagree
// with the catalog geometry it knows a priori.
func TestScanMultiErrorPaths(t *testing.T) {
	mc := dsi.MultiConfig{Channels: 3, Scheduler: dsi.SchedSplit}

	err := corrupt(t, mc, func(ch int, p Packet) Packet {
		if ch == 1 {
			p.Slot++ // mid-cycle start: the first slot is not slot 0
		}
		return p
	})
	if err == nil || !strings.Contains(err.Error(), "want 0") {
		t.Errorf("mid-cycle start accepted: %v", err)
	}

	err = corrupt(t, mc, func(ch int, p Packet) Packet {
		if ch == 2 && p.Slot == 0 {
			p.Payload = p.Payload[:10] // object-start packet cut below the header width
		}
		return p
	})
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Errorf("truncated header packet accepted: %v", err)
	}

	err = corrupt(t, mc, func(ch int, p Packet) Packet {
		if ch == 0 && len(p.Payload) > 0 {
			p.Payload = p.Payload[:1] // table packets cut short
		}
		return p
	})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated table payload accepted: %v", err)
	}

	err = corrupt(t, mc, func(ch int, p Packet) Packet {
		p.Payload = make([]byte, 200) // oversized payload
		return p
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds capacity") {
		t.Errorf("oversized payload accepted: %v", err)
	}

	err = corrupt(t, mc, func(ch int, p Packet) Packet {
		p.Ch = 0 // every packet claims channel 0
		return p
	})
	if err == nil {
		t.Error("mislabelled channel accepted")
	}

	err = corrupt(t, mc, func(ch int, p Packet) Packet {
		if ch == 2 {
			p.Flags |= flagIndex // index packets on a data-only channel
		}
		return p
	})
	if err == nil || !strings.Contains(err.Error(), "unexpected table packet") {
		t.Errorf("table packet on data channel accepted: %v", err)
	}

	lay := buildLayout(t, dsi.Config{}, mc)
	if _, err := ScanMulti(lay, make([]<-chan Packet, 1)); err == nil {
		t.Error("wrong stream count accepted")
	}
}

// TestScanSingleErrorPaths extends the classic single-channel Scan with
// the error paths it never had tests for: mid-cycle start, oversized
// payloads, and nonzero channel ids.
func TestScanSingleErrorPaths(t *testing.T) {
	ds := dataset.Uniform(120, 6, 13)
	x, err := dsi.Build(ds, dsi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	stream := func(fn func(p Packet) Packet) error {
		c := make(chan Packet, 64)
		go func() {
			for slot := 0; slot < x.Prog.Len(); slot++ {
				c <- fn(tx.Packet(slot))
			}
			close(c)
		}()
		_, err := Scan(x, c)
		return err
	}

	if err := stream(func(p Packet) Packet { p.Slot += 7; return p }); err == nil ||
		!strings.Contains(err.Error(), "want 0") {
		t.Errorf("mid-cycle Scan start accepted: %v", err)
	}
	if err := stream(func(p Packet) Packet {
		p.Payload = make([]byte, 100)
		return p
	}); err == nil || !strings.Contains(err.Error(), "exceeds capacity") {
		t.Errorf("oversized payload accepted: %v", err)
	}
	if err := stream(func(p Packet) Packet { p.Ch = 1; return p }); err == nil ||
		!strings.Contains(err.Error(), "channel") {
		t.Errorf("nonzero channel accepted by single-channel Scan: %v", err)
	}
	if err := stream(func(p Packet) Packet { p.Flags &^= flagIndex; return p }); err == nil {
		t.Error("unflagged table packet accepted")
	}
	if err := stream(func(p Packet) Packet {
		if p.Flags&flagIndex != 0 && len(p.Payload) > 0 {
			p.Payload = p.Payload[:1]
		}
		return p
	}); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated table payload accepted by single-channel Scan: %v", err)
	}
}

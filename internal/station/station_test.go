package station

import (
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
)

func buildIdx(t *testing.T, cfg dsi.Config) *dsi.Index {
	t.Helper()
	ds := dataset.Uniform(150, 6, 41)
	x, err := dsi.Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func streamCycle(t *testing.T, x *dsi.Index) []FrameInfo {
	t.Helper()
	tx, err := NewTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Packet, 64)
	go tx.Cycle(ch)
	frames, err := Scan(x, ch)
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

func TestStreamIsSelfDescribing(t *testing.T) {
	for _, cfg := range []dsi.Config{
		{},
		{Segments: 2},
		{Capacity: 512},
		{Sizing: dsi.SizingUnitFactor},
		{Sizing: dsi.SizingPaperTable, Capacity: 64},
	} {
		x := buildIdx(t, cfg)
		frames := streamCycle(t, x)
		// The receiver must reconstruct the exact broadcast metadata:
		// every frame's minimum HC and every object header, from raw
		// bytes alone.
		total := 0
		for pos, fi := range frames {
			f := x.PosToFrame(pos)
			if fi.MinHC != x.MinHC(f) {
				t.Fatalf("cfg %+v pos %d: scanned min HC %d, want %d", cfg, pos, fi.MinHC, x.MinHC(f))
			}
			first, num := x.FrameObjects(f)
			if len(fi.Headers) != num {
				t.Fatalf("cfg %+v pos %d: %d headers, want %d", cfg, pos, len(fi.Headers), num)
			}
			for o, h := range fi.Headers {
				obj := x.DS.Objects[first+o]
				if h.HC != obj.HC || h.X != obj.P.X || h.Y != obj.P.Y {
					t.Fatalf("cfg %+v pos %d obj %d: header %+v does not match %+v", cfg, pos, o, h, obj)
				}
			}
			total += num
		}
		if total != x.DS.N() {
			t.Fatalf("cfg %+v: stream carried %d objects, want %d", cfg, total, x.DS.N())
		}
	}
}

func TestPacketFraming(t *testing.T) {
	x := buildIdx(t, dsi.Config{})
	tx, err := NewTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 3*x.FramePackets; slot++ {
		p := tx.Packet(slot)
		if int(p.Slot) != slot {
			t.Fatalf("slot %d framed as %d", slot, p.Slot)
		}
		if len(p.Payload) > x.Cfg.Capacity {
			t.Fatalf("slot %d payload %dB over capacity", slot, len(p.Payload))
		}
		within := slot % x.FramePackets
		wantIndex := within < x.TablePackets
		if (p.Flags&flagIndex != 0) != wantIndex {
			t.Fatalf("slot %d index flag wrong", slot)
		}
		if wantIndex != (x.Prog.At(slot).Kind == broadcast.KindIndex) {
			t.Fatalf("slot %d kind disagrees with the simulator program", slot)
		}
	}
	// Packet is cyclic.
	if got := tx.Packet(x.Prog.Len()); got.Slot != 0 {
		t.Error("Packet must wrap around the cycle")
	}
}

func TestObjectPayloadDeterministic(t *testing.T) {
	x := buildIdx(t, dsi.Config{})
	tx, _ := NewTransmitter(x)
	slot := x.TablePackets // first data packet of position 0
	a := tx.Packet(slot)
	b := tx.Packet(slot)
	if string(a.Payload) != string(b.Payload) {
		t.Error("object payload not deterministic")
	}
}

func TestScanRejectsCorruptStream(t *testing.T) {
	x := buildIdx(t, dsi.Config{})
	tx, _ := NewTransmitter(x)

	// Each corrupted stream gets its own channel, passed into its
	// producer goroutine by value: reusing one captured variable across
	// blocks races a finished producer's close against the next make.
	stream := func(fill func(out chan<- Packet)) <-chan Packet {
		ch := make(chan Packet, 64)
		go func(out chan<- Packet) {
			fill(out)
			close(out)
		}(ch)
		return ch
	}

	// Out-of-order slots.
	in := stream(func(out chan<- Packet) {
		p := tx.Packet(0)
		p.Slot = 5
		out <- p
	})
	if _, err := Scan(x, in); err == nil {
		t.Error("out-of-order stream accepted")
	}

	// Truncated cycle.
	in = stream(func(out chan<- Packet) {
		for slot := 0; slot < x.FramePackets; slot++ {
			out <- tx.Packet(slot)
		}
	})
	if _, err := Scan(x, in); err == nil {
		t.Error("truncated stream accepted")
	}

	// Oversized payload.
	in = stream(func(out chan<- Packet) {
		p := tx.Packet(0)
		p.Payload = make([]byte, x.Cfg.Capacity+1)
		out <- p
	})
	if _, err := Scan(x, in); err == nil {
		t.Error("oversized payload accepted")
	}

	// Missing index flag.
	in = stream(func(out chan<- Packet) {
		p := tx.Packet(0)
		p.Flags = 0
		out <- p
	})
	if _, err := Scan(x, in); err == nil {
		t.Error("unflagged table packet accepted")
	}
}

func TestPaddingSlotsOfPartialLastFrame(t *testing.T) {
	// 103 objects with paper-table sizing leave padding slots in the
	// last frame; the transmitter must emit empty packets there and the
	// scanner must not invent objects.
	ds := dataset.Uniform(103, 6, 43)
	x, err := dsi.Build(ds, dsi.Config{Sizing: dsi.SizingPaperTable, Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Packet, 64)
	go tx.Cycle(ch)
	frames, err := Scan(x, ch)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, fi := range frames {
		total += len(fi.Headers)
	}
	if total != 103 {
		t.Fatalf("scanned %d objects, want 103", total)
	}
}

// FECReceiver: the recovering byte-level receiver. It wraps a
// WireReceiver behind the same dsi.Receiver seam — zero client
// changes — but runs its tuner on the physical (parity-bearing) air a
// coded station transmits, presenting the client a logical facade:
// Pos and DozeUntilPos speak logical cycle positions (parity slots map
// forward to the next content slot), while Now, PhaseOf and Stats stay
// physical, because parity slots are real air time.
//
// Reception works unit-at-a-time. A clean unit read costs exactly what
// the plain WireReceiver pays — parity is dozed past, never received.
// When a read loses packets, the receiver continues into the unit's
// parity tail (extra tuning, honestly charged), validates each parity
// frame against the unit it expects, and solves the erasures per
// group. Losses beyond the code distance degrade gracefully: the read
// reports failure and the client falls back to the plain
// rebroadcast-wait retry it has always had.
//
// The receiver buffers the current group window: member payloads seen
// while working through a unit (a header read, a recovery) are kept,
// keyed by the unit's occurrence, so a later Object call — the same
// occurrence after a header, or a whole cycle later after a header
// recovery — claims members already received instead of re-reading
// them. With the zero FECConfig every method delegates straight to the
// wrapped WireReceiver: the rate-1 path is the plain wire path,
// bit for bit.

package station

import (
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/wire"
)

// FECReceiver implements dsi.Receiver over a coded PacketSource.
type FECReceiver struct {
	w    *WireReceiver
	cfg  wire.FECConfig
	geo  *fecGeom  // nil when the code is disabled (pure delegation)
	fsrc FECSource // the source's FEC descriptor feed

	descPackets int

	// Group window: member payloads of one unit occurrence.
	win struct {
		ch   int
		unit int32 // unit index within the channel; -1 when empty
		abs  int64 // absolute physical slot of member 0 when recorded
		ver  uint32
		ok   uint64 // members known good (payload may be legitimately empty)
		pay  [][]byte
	}

	payBuf  [][]byte // member scratch
	tailBuf [][]byte // parity-tail scratch

	// cache keeps recently recovered units across queries (feccache.go):
	// Table re-reads of a unit that cost a recovery decode from it with
	// zero air slots. Survives Reset; dropped on schedule adoption.
	cache fecCache

	recovered int // packets reconstructed from parity since construction
	cacheHits int // table reads served from the recovered-unit cache

	met *obs.FECMetrics // optional coding-event counters; nil when unobserved
}

// SetObs installs the FEC counter bundle; nil disables counting. Not
// safe to call concurrently with reception.
func (r *FECReceiver) SetObs(m *obs.FECMetrics) { r.met = m }

// Recovered returns the number of packets reconstructed from parity —
// losses the code absorbed that would otherwise have cost a
// rebroadcast wait.
func (r *FECReceiver) Recovered() int { return r.recovered }

// CacheHits returns the number of Table reads served entirely from the
// recovered-unit cache — re-reads that cost zero air slots.
func (r *FECReceiver) CacheHits() int { return r.cacheHits }

// NewFECReceiver returns a recovering byte-level receiver tuned to the
// layout's start channel at the given absolute slot of the physical
// (parity-bearing) stream. cfg must be the code the source transmits —
// it is catalog knowledge, validated against the source's FEC
// descriptor at construction. The zero cfg delegates everything to a
// plain WireReceiver over the logical air.
func NewFECReceiver(lay *dsi.Layout, version uint32, src PacketSource, cfg wire.FECConfig, probeSlot int64, loss *broadcast.LossModel) (*FECReceiver, error) {
	w, err := NewWireReceiver(lay, version, src, probeSlot, loss)
	if err != nil {
		return nil, err
	}
	r := &FECReceiver{w: w, cfg: cfg}
	r.win.unit = -1
	if !cfg.Enabled() {
		return r, nil
	}
	geo, err := newFECGeom(lay, cfg)
	if err != nil {
		return nil, err
	}
	fsrc, ok := src.(FECSource)
	if !ok {
		return nil, fmt.Errorf("station: source carries no FEC descriptor for code %+v", cfg)
	}
	desc, _ := fsrc.FECDescAt(probeSlot)
	got, _, err := wire.DecodeFECDesc(desc)
	if err != nil {
		return nil, fmt.Errorf("station: source FEC descriptor: %w", err)
	}
	if got != cfg {
		return nil, fmt.Errorf("station: source transmits code %+v, receiver configured for %+v", got, cfg)
	}
	r.geo = geo
	r.fsrc = fsrc
	r.descPackets = broadcast.PacketsFor(wire.FECDescSize, lay.X.Cfg.Capacity)
	// The facade's tuner runs on the physical air; probe slots and all
	// clock arithmetic are physical from here on.
	w.tu = broadcast.NewAirTuner(geo.air, lay.StartCh, probeSlot, loss)
	return r, nil
}

func (r *FECReceiver) on() bool { return r.geo != nil }

// countSolve counts one recovery attempt's outcome (cold path: only
// reached when loss forced a parity solve).
func (r *FECReceiver) countSolve(ok bool) {
	if r.met == nil {
		return
	}
	if ok {
		r.met.GroupSolves.Inc()
	} else {
		r.met.SolveFailures.Inc()
	}
}

// countRecovered counts one packet reconstructed from parity.
func (r *FECReceiver) countRecovered() {
	r.recovered++
	if r.met != nil {
		r.met.Recovered.Inc()
	}
}

// CycleSlots returns the physical slots of one full broadcast cycle
// across all channels — what probe positions scale against (the coded
// analogue of Layout.ProbeCycle).
func (r *FECReceiver) CycleSlots() int {
	if !r.on() {
		return r.w.lay.ProbeCycle()
	}
	total := 0
	for ch := range r.geo.chs {
		total += r.geo.chs[ch].physLen
	}
	return total
}

// Layout returns the layout the receiver currently assumes on air.
func (r *FECReceiver) Layout() *dsi.Layout { return r.w.Layout() }

// Version returns the shard-directory version most recently adopted.
func (r *FECReceiver) Version() uint32 { return r.w.Version() }

// Now returns the absolute packet clock (physical slots).
func (r *FECReceiver) Now() int64 { return r.w.Now() }

// Pos returns the logical cycle position on the current channel; a
// radio sitting on a parity slot reports the next content position.
func (r *FECReceiver) Pos() int {
	if !r.on() {
		return r.w.Pos()
	}
	return int(r.geo.chs[r.w.tu.Channel()].logOf[r.w.tu.Pos()])
}

// Channel returns the channel the radio is tuned to.
func (r *FECReceiver) Channel() int { return r.w.Channel() }

// PhaseOf returns the absolute physical slot at which channel ch's
// adopted cycle has position 0.
func (r *FECReceiver) PhaseOf(ch int) int64 { return r.w.PhaseOf(ch) }

// Stats returns the metrics accumulated since the last Reset.
func (r *FECReceiver) Stats() broadcast.Stats { return r.w.Stats() }

// Tune retunes the radio to channel ch.
func (r *FECReceiver) Tune(ch int) { r.w.Tune(ch) }

// DozeUntilPos sleeps to the next occurrence of the logical position
// on the current channel, dozing past any parity in between.
func (r *FECReceiver) DozeUntilPos(pos int) {
	if !r.on() {
		r.w.DozeUntilPos(pos)
		return
	}
	r.w.tu.DozeUntilPos(int(r.geo.chs[r.w.tu.Channel()].log2phys[pos]))
}

// Next receives one packet at the current slot (the probe).
func (r *FECReceiver) Next() (broadcast.Slot, bool) { return r.w.Next() }

// Reset re-tunes the receiver at the given absolute physical slot with
// fresh metrics, dropping the group window (its occurrence anchors are
// meaningless after a re-tune). Adopted schedule knowledge persists,
// as on the plain WireReceiver.
func (r *FECReceiver) Reset(probeSlot int64, loss *broadcast.LossModel) {
	r.w.Reset(probeSlot, loss)
	r.win.unit = -1
}

// SetChannelLoss installs a per-channel loss model.
func (r *FECReceiver) SetChannelLoss(ch int, loss *broadcast.LossModel) error {
	return r.w.SetChannelLoss(ch, loss)
}

// Follow commits the client's re-seed onto a layout obtained from Poll.
func (r *FECReceiver) Follow(lay *dsi.Layout) {
	r.w.Follow(lay)
	r.cache.drop()
}

// allMask returns the bitmap of an n-member unit.
func allMask(n int) uint64 { return ^uint64(0) >> uint(64-n) }

// tableUnit and dataUnit locate the geometry unit a (pos, o) request
// addresses, from catalog knowledge alone.
func (r *FECReceiver) tableUnit(pos int) (*fecUnit, int32, int) {
	lay := r.w.lay
	tc, ts := lay.TablePlace(pos)
	c := &r.geo.chs[tc]
	pp := c.log2phys[ts%lay.ChanLen(tc)]
	return &c.units[c.unitOf[pp]], c.unitOf[pp], tc
}

func (r *FECReceiver) dataUnit(pos, o int) (*fecUnit, int32, int) {
	lay := r.w.lay
	dc, dslot := lay.DataPlace(pos)
	c := &r.geo.chs[dc]
	pp := c.log2phys[(dslot+o*r.w.x.ObjPackets)%lay.ChanLen(dc)]
	return &c.units[c.unitOf[pp]], c.unitOf[pp], dc
}

// expLen returns the expected payload length of member i of a unit —
// pure catalog geometry, which is what lets capacity-sized parity
// symbols reconstruct variable-length payloads.
func (r *FECReceiver) expLen(u *fecUnit, i int) int {
	x := r.w.x
	capacity := x.Cfg.Capacity
	var total int
	if u.table {
		if r.w.single {
			total = x.TableBytes()
		} else {
			total = wire.MCTableSize(x.E)
		}
	} else {
		_, num := x.FrameObjects(x.PosToFrame(u.pos))
		if u.obj < num {
			total = x.Cfg.ObjectBytes
		}
	}
	l := total - i*capacity
	if l < 0 {
		l = 0
	}
	if l > capacity {
		l = capacity
	}
	return l
}

// members returns the member scratch sized for a unit, cleared.
func (r *FECReceiver) members(n int) [][]byte {
	if cap(r.payBuf) < n {
		r.payBuf = make([][]byte, n)
	}
	pay := r.payBuf[:n]
	for i := range pay {
		pay[i] = nil
	}
	return pay
}

// readTail receives a unit's parity tail, validating every parity
// frame against the unit and tail position it should occupy; anything
// corrupt, foreign, or mislabelled counts as a lost parity packet.
// Returns the per-tail-offset parity symbols (nil where lost).
func (r *FECReceiver) readTail(u *fecUnit, code wire.FECCode) [][]byte {
	w := r.w
	capacity := w.x.Cfg.Capacity
	if cap(r.tailBuf) < code.Tail() {
		r.tailBuf = make([][]byte, code.Tail())
	}
	tail := r.tailBuf[:code.Tail()]
	for t := range tail {
		tail[t] = nil
		pkt, good := w.read()
		if !good || pkt.Flags&flagParity == 0 {
			continue
		}
		h, sym, err := wire.DecodeParity(pkt.Payload, capacity)
		if err != nil {
			continue
		}
		grp, row := t%code.Groups, t/code.Groups
		wantMembers, k := code.GroupMembers(u.n, grp)
		if h.Unit != uint32(u.logStart) || int(h.Group) != grp || int(h.Index) != row ||
			int(h.R) != code.Parity || int(h.K) != k || h.Members != wantMembers {
			continue
		}
		tail[t] = sym
	}
	return tail
}

// recoverUnit solves the erasures of one unit from its parity tail.
// pay[i]/okMask describe the members (okMask bit i set when member i
// was received good; empty payloads are legitimate), tail is
// readTail's output, and need marks the members that must be known
// good afterwards. Groups with no needed erasure are skipped (their
// members stay unknown); a needed group whose equations do not
// determine its erasures fails the whole recovery. On success the
// returned slice carries a capacity-sized symbol for every recovered
// member (nil for members that were already good or were skipped).
func recoverUnit(code wire.FECCode, n, capacity int, pay [][]byte, okMask uint64, tail [][]byte, need uint64) ([][]byte, bool) {
	out := make([][]byte, n)
	for g := 0; g < code.Groups; g++ {
		missing := uint64(0)
		for i := g; i < n; i += code.Groups {
			if okMask&(1<<uint(i)) == 0 {
				missing |= 1 << uint(i)
			}
		}
		if missing == 0 || missing&need == 0 {
			continue
		}
		var data [][]byte
		var idx []int
		for i := g; i < n; i += code.Groups {
			if okMask&(1<<uint(i)) != 0 {
				sym := make([]byte, capacity)
				copy(sym, pay[i])
				data = append(data, sym)
			} else {
				data = append(data, nil)
			}
			idx = append(idx, i)
		}
		rows := make([][]byte, code.Parity)
		for j := range rows {
			rows[j] = tail[j*code.Groups+g]
		}
		if !wire.RSRecover(data, rows) {
			return nil, false
		}
		for m, i := range idx {
			if okMask&(1<<uint(i)) == 0 {
				out[i] = data[m]
			}
		}
	}
	return out, true
}

// setWindow records a unit occurrence's member payloads for later
// claims.
func (r *FECReceiver) setWindow(ch int, unit int32, abs int64, pay [][]byte, ok uint64) {
	r.win.ch = ch
	r.win.unit = unit
	r.win.abs = abs
	r.win.ver = r.w.ver
	r.win.ok = ok
	if cap(r.win.pay) < len(pay) {
		r.win.pay = make([][]byte, len(pay))
	}
	r.win.pay = r.win.pay[:len(pay)]
	copy(r.win.pay, pay)
}

// windowHit reports whether the group window holds this unit with an
// occurrence anchor a whole number of cycles before abs (same content
// under a static schedule generation — the adopted version is part of
// the key).
func (r *FECReceiver) windowHit(ch int, unit int32, abs int64) bool {
	if r.win.unit != unit || r.win.ch != ch || r.win.ver != r.w.ver {
		return false
	}
	d := abs - r.win.abs
	return d >= 0 && d%int64(r.geo.chs[ch].physLen) == 0
}

// Table receives — and if necessary reconstructs — the index table of
// the frame at cycle position pos. A clean read costs exactly the
// plain WireReceiver's TablePackets packets; any loss continues into
// the parity tail and solves the erasures, and only when that fails
// does the read report failure.
func (r *FECReceiver) Table(pos int) (*dsi.Table, bool) {
	if !r.on() {
		return r.w.Table(pos)
	}
	w := r.w
	u, ui, ch := r.tableUnit(pos)
	n := u.n
	base := w.tu.Now()
	if cached := r.cache.lookup(ch, ui, w.ver, base, r.geo.chs[ch].physLen); cached != nil {
		// The whole unit was recovered at an earlier occurrence: decode
		// from the cache with zero air slots — the radio stays dozing.
		r.cacheHits++
		if r.met != nil {
			r.met.CacheHits.Inc()
		}
		buf := w.tabBuf[:0]
		for i := 0; i < n; i++ {
			buf = append(buf, cached[i]...)
		}
		w.tabBuf = buf
		return w.decodeTable(buf, pos)
	}
	pay := r.members(n)
	okm := uint64(0)
	for i := 0; i < n; i++ {
		pkt, good := w.read()
		if good && pkt.Flags&flagIndex != 0 {
			pay[i] = pkt.Payload
			okm |= 1 << uint(i)
		}
	}
	if okm != allMask(n) {
		code := r.cfg.Table
		if !code.Enabled() {
			return nil, false
		}
		tail := r.readTail(u, code)
		syms, ok := recoverUnit(code, n, w.x.Cfg.Capacity, pay, okm, tail, allMask(n))
		r.countSolve(ok)
		if !ok {
			return nil, false
		}
		for i := 0; i < n; i++ {
			if okm&(1<<uint(i)) == 0 {
				pay[i] = syms[i][:r.expLen(u, i)]
				r.countRecovered()
			}
		}
		// Only recovered units are cached: a cleanly received unit
		// re-airs every cycle for free, so the error-free cost model
		// stays exactly the plain receiver's.
		r.cache.store(ch, ui, w.ver, base, pay)
	}
	buf := w.tabBuf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, pay[i]...)
	}
	w.tabBuf = buf
	return w.decodeTable(buf, pos)
}

// Header receives the header packet of the o-th object of the frame at
// position pos. A lost header triggers whole-unit recovery: the
// receiver reads the unit's remaining members and its parity tail,
// reconstructs the first packet (and with it the whole object, which
// the group window keeps for the Object call that typically follows),
// and decodes the header from the recovered bytes.
func (r *FECReceiver) Header(pos, o int) (uint64, bool) {
	if !r.on() {
		return r.w.Header(pos, o)
	}
	w := r.w
	base := w.tu.Now()
	u, ui, ch := r.dataUnit(pos, o)
	if r.windowHit(ch, ui, base) && r.win.ok&1 != 0 {
		// The window already holds this occurrence's first packet
		// (reconstructed or received earlier): claim it without
		// receiving — the radio stays dozing.
		h, err := wire.DecodeHeader(r.win.pay[0])
		if err != nil {
			return 0, false
		}
		r.win.abs = base
		return h.HC, true
	}
	pkt, good := w.read()
	if good {
		// Received bytes are final: an unflagged slot (padding) or an
		// undecodable payload is not recoverable loss.
		if pkt.Flags&flagObjectStart == 0 {
			return 0, false
		}
		h, err := wire.DecodeHeader(pkt.Payload)
		if err != nil {
			return 0, false
		}
		pay := r.members(u.n)
		pay[0] = pkt.Payload
		r.setWindow(ch, ui, base, pay, 1)
		return h.HC, true
	}
	code := r.cfg.Object
	if !code.Enabled() {
		return 0, false
	}
	if r.expLen(u, 0) < wire.HeaderSize {
		return 0, false // padding object: there is no header to recover
	}
	n := u.n
	pay := r.members(n)
	okm := uint64(0)
	for i := 1; i < n; i++ {
		p, g := w.read()
		if g {
			pay[i] = p.Payload
			okm |= 1 << uint(i)
		}
	}
	if r.windowHit(ch, ui, base) {
		// Members buffered at an earlier occurrence fill in for fresh
		// losses before the code has to.
		for i := 0; i < n; i++ {
			if okm&(1<<uint(i)) == 0 && r.win.ok&(1<<uint(i)) != 0 {
				pay[i] = r.win.pay[i]
				okm |= 1 << uint(i)
			}
		}
	}
	tail := r.readTail(u, code)
	syms, ok := recoverUnit(code, n, w.x.Cfg.Capacity, pay, okm, tail, allMask(n))
	r.countSolve(ok)
	if !ok {
		r.setWindow(ch, ui, base, pay, okm)
		return 0, false
	}
	for i := 0; i < n; i++ {
		if okm&(1<<uint(i)) == 0 {
			pay[i] = syms[i][:r.expLen(u, i)]
			okm |= 1 << uint(i)
			r.countRecovered()
		}
	}
	r.setWindow(ch, ui, base, pay, okm)
	h, err := wire.DecodeHeader(pay[0])
	if err != nil {
		return 0, false
	}
	return h.HC, true
}

// Object receives the remaining packets of the o-th object of the
// frame at position pos. Members the group window already holds for
// this unit — received or reconstructed at an earlier occurrence —
// are claimed without re-reading; fresh losses continue into the
// parity tail. Losses beyond the code distance report failure, and the
// client falls back to the rebroadcast-wait retry.
func (r *FECReceiver) Object(pos, o, skip int) bool {
	if !r.on() {
		return r.w.Object(pos, o, skip)
	}
	w := r.w
	u, ui, ch := r.dataUnit(pos, o)
	n := u.n
	base := w.tu.Now() - int64(skip)
	wanted := allMask(n) &^ allMask(skip)
	if skip == 0 {
		wanted = allMask(n)
	}
	hit := r.windowHit(ch, ui, base)
	if hit && r.win.ok&wanted == wanted {
		return true // every needed member already received and kept
	}
	pay := r.members(n)
	okm := uint64(0)
	if hit {
		for i := 0; i < skip && i < n; i++ {
			if r.win.ok&(1<<uint(i)) != 0 {
				pay[i] = r.win.pay[i]
				okm |= 1 << uint(i)
			}
		}
	}
	lost := uint64(0)
	for i := skip; i < n; i++ {
		pkt, good := w.read()
		switch {
		case good:
			pay[i] = pkt.Payload
			okm |= 1 << uint(i)
		case hit && r.win.ok&(1<<uint(i)) != 0:
			// Lost on air but buffered from an earlier occurrence of
			// this unit: the windowed copy stands in for the loss.
			pay[i] = r.win.pay[i]
			okm |= 1 << uint(i)
		default:
			lost |= 1 << uint(i)
		}
	}
	if lost == 0 {
		return true
	}
	code := r.cfg.Object
	if !code.Enabled() {
		return false
	}
	tail := r.readTail(u, code)
	syms, ok := recoverUnit(code, n, w.x.Cfg.Capacity, pay, okm, tail, lost)
	r.countSolve(ok)
	if !ok {
		return false
	}
	for i := 0; i < n; i++ {
		if okm&(1<<uint(i)) == 0 && syms[i] != nil {
			pay[i] = syms[i][:r.expLen(u, i)]
			okm |= 1 << uint(i)
			r.countRecovered()
		}
	}
	r.setWindow(ch, ui, base, pay, okm)
	return true
}

// Poll checks for a shard-directory version bump, exactly like the
// plain WireReceiver — with two coded differences: the FEC descriptor
// crosses the air with the directory (its packets join the reception
// cost and are subject to the same loss), and the re-anchoring
// arithmetic runs over physical channel lengths, whose cycle
// boundaries the transmitter's seams live on.
func (r *FECReceiver) Poll() (*dsi.Layout, bool) {
	if !r.on() {
		return r.w.Poll()
	}
	w := r.w
	now := w.tu.Now()
	dir, over := w.src.DirectoryAt(now)
	if dir == nil || over <= w.ver || w.single {
		return nil, false
	}
	desc, dver := r.fsrc.FECDescAt(now)
	ok := true
	for i := 0; i < w.dirPackets+r.descPackets; i++ {
		if _, good := w.tu.Read(); !good {
			ok = false
		}
	}
	if !ok {
		return nil, false
	}
	ver, seam, entries, err := wire.DecodeDirV(dir)
	if err != nil || len(entries) != w.lay.Channels() || ver <= w.ver {
		return nil, false
	}
	if ver != w.ver+1 {
		panic(fmt.Sprintf("station: wire receiver at directory version %d cannot follow version %d; re-tune with a current catalog", w.ver, ver))
	}
	cfg, fv, err := wire.DecodeFECDesc(desc)
	if err != nil || fv != ver || dver != over {
		return nil, false // descriptor not (yet) consistent with the directory
	}
	lay, err := dsi.NewLayout(w.x, dsi.MultiConfig{
		Channels:    w.lay.Channels(),
		Scheduler:   dsi.SchedShard,
		SwitchSlots: w.lay.Cfg.SwitchSlots,
		ShardBounds: wire.BoundsFromDir(entries),
	})
	if err != nil {
		return nil, false
	}
	// The descriptor is authoritative: a swap may change the code along
	// with the directory (an adaptive station retuning its rate), so the
	// new geometry is built under the decoded cfg. The recovered-unit
	// cache and the group window — keyed to the old unit geometry — are
	// dropped below either way; adopting the new code just makes that
	// drop load-bearing instead of conservative.
	geo, err := newFECGeom(lay, cfg)
	if err != nil {
		return nil, false
	}
	// Each channel's new cycle is anchored at its first old-cycle
	// boundary at or after the announced seam — old physical lengths,
	// matching the transmitter's seam arithmetic.
	phase := make([]int64, w.lay.Channels())
	for ch := range phase {
		l := int64(r.geo.chs[ch].physLen)
		ph := w.tu.PhaseOf(ch)
		rel := seam - ph
		k := rel / l
		if rel%l != 0 {
			k++
		}
		phase[ch] = ph + k*l
	}
	w.ver = ver
	w.tu.RetunePhased(geo.air, phase)
	w.adoptGeometry(lay)
	if cfg != r.cfg {
		r.cfg = cfg
		if r.met != nil {
			r.met.CodeSwaps.Inc()
		}
	}
	r.geo = geo
	r.win.unit = -1
	r.cache.drop()
	return lay, true
}

// The recovered-unit cache. The group window (fecrx.go) keeps exactly
// one unit occurrence — enough for the header-then-object claim inside
// a single retrieval, but a recovery's work is forgotten as soon as
// the receiver moves on, and dropped entirely at Reset. The unit cache
// is the multi-unit complement: a small LRU of fully-known units the
// receiver reconstructed from parity, keyed like the window by
// (channel, unit, adopted version) with whole-cycle occurrence
// congruence. A later Table read of a cached unit — typically the next
// query re-reading last cycle's index tables — decodes straight from
// the cache with zero air slots: no reception, no latency, the radio
// stays dozing. The cache deliberately survives Reset (cross-query
// hits are its whole point; content is a function of the schedule, not
// of the radio's clock) and is dropped only when the schedule
// generation changes under the receiver (Poll adoption, Follow).
//
// Only units that cost a recovery are cached: a cleanly received unit
// re-airs every cycle for free, so caching it buys nothing and the
// error-free cost model stays exactly the plain receiver's.

package station

// fecCacheUnits is the cache capacity in units. Index tables are the
// intended tenants — a handful covers a query's working set of table
// re-reads — and each entry holds one unit's payload copies, so the
// budget stays a few KiB.
const fecCacheUnits = 4

// fecCacheEntry is one fully-known unit occurrence.
type fecCacheEntry struct {
	ch   int
	unit int32
	abs  int64 // absolute physical slot of member 0 when recorded
	ver  uint32
	pay  [][]byte // owned copies, every member known good
	used int64    // LRU clock at last touch
}

// fecCache is a tiny LRU over recovered units.
type fecCache struct {
	entries []fecCacheEntry
	clock   int64
}

// lookup returns the payloads of the cached unit occurrence congruent
// with abs (a whole number of cycles apart on a physLen-slot channel,
// same adopted version), or nil.
func (c *fecCache) lookup(ch int, unit int32, ver uint32, abs int64, physLen int) [][]byte {
	for i := range c.entries {
		e := &c.entries[i]
		if e.ch != ch || e.unit != unit || e.ver != ver {
			continue
		}
		if (abs-e.abs)%int64(physLen) != 0 {
			continue
		}
		c.clock++
		e.used = c.clock
		return e.pay
	}
	return nil
}

// store records a fully-known unit occurrence, copying the payloads
// (callers recycle their member scratch). An existing entry for the
// unit is replaced; otherwise the least recently used slot is evicted.
func (c *fecCache) store(ch int, unit int32, ver uint32, abs int64, pay [][]byte) {
	c.clock++
	var slot *fecCacheEntry
	for i := range c.entries {
		e := &c.entries[i]
		if e.ch == ch && e.unit == unit && e.ver == ver {
			slot = e
			break
		}
	}
	if slot == nil {
		if len(c.entries) < fecCacheUnits {
			c.entries = append(c.entries, fecCacheEntry{})
			slot = &c.entries[len(c.entries)-1]
		} else {
			slot = &c.entries[0]
			for i := range c.entries {
				if c.entries[i].used < slot.used {
					slot = &c.entries[i]
				}
			}
		}
	}
	owned := make([][]byte, len(pay))
	for i, p := range pay {
		owned[i] = append([]byte(nil), p...)
	}
	*slot = fecCacheEntry{ch: ch, unit: unit, abs: abs, ver: ver, pay: owned, used: c.clock}
}

// drop empties the cache — the schedule generation changed and every
// anchor is meaningless.
func (c *fecCache) drop() { c.entries = c.entries[:0] }

// Online re-planning, transmitter side: a Rebroadcaster keeps a
// multi-channel DSI broadcast on air while its shard directory is
// swapped for a freshly planned one. The swap is staged, then takes
// effect at a cycle seam: the global seam is the next index-channel
// cycle boundary, and every data channel cuts over at its own first
// old-cycle boundary at or after that slot — channels never truncate a
// cycle mid-frame, so old-version frames keep streaming across the
// transition window while the index channel already carries the new
// directory. Receivers holding the old directory stay consistent with
// what their channels still transmit until they pick up the version
// bump; from the bump and the old geometry they can compute every
// channel's cutover slot (the seam arithmetic below is deliberately a
// pure function of the old directory plus the announced seam).
//
// With no swap staged — or a swap to an identical shard map — the
// rebroadcaster is packet-for-packet the plain MultiTransmitter, which
// is the regression contract the drift experiment's control arm rests
// on.

package station

import (
	"fmt"
	"sync"

	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/wire"
)

// Rebroadcaster serves the live byte streams of a sharded broadcast
// across shard-directory swaps. It is safe for concurrent use: many
// reader goroutines may call PacketAt/DirectoryAt while one control
// goroutine stages and commits swaps.
type Rebroadcaster struct {
	mu sync.RWMutex

	// fcfg is the erasure code of the generation on air. Stage keeps it;
	// StageFEC swaps it with the directory, so each generation carries
	// its own code (nextCfg while staged). The zero config is the uncoded
	// rebroadcaster. curFec/nextFec are the versioned FEC descriptors
	// mirroring curDir/nextDir — always encoded, even for the zero code,
	// so coded receivers can follow a swap that turns coding off.
	fcfg    wire.FECConfig
	nextCfg wire.FECConfig
	curFec  []byte
	nextFec []byte

	// met, when set, counts swaps staged/committed, the version on air,
	// and per-channel packets emitted. Nil counts nothing.
	met *obs.StationMetrics

	cur     *MultiTransmitter
	version uint32
	// phase[ch] is the absolute slot at which channel ch's current
	// program has cycle phase 0. The initial directory is anchored at
	// slot 0; every swap re-anchors a channel at its cutover seam.
	phase []int64
	// curDir is the versioned encoding of the directory on air,
	// announcing the seam at which it took effect (slot 0 for the
	// initial one). The payload is immutable once on air, so it is
	// encoded once per swap and DirectoryAt serves it as-is.
	curDir []byte

	// Staged swap; nil when none is in flight.
	next *MultiTransmitter
	// seam[ch] is channel ch's cutover slot: the first boundary of its
	// old cycle at or after swapSlot.
	seam     []int64
	swapSlot int64
	nextDir  []byte
}

// NewRebroadcaster puts the layout on air as directory version 1,
// anchored at slot 0.
func NewRebroadcaster(lay *dsi.Layout) (*Rebroadcaster, error) {
	return NewRebroadcasterFEC(lay, wire.FECConfig{})
}

// NewRebroadcasterFEC is NewRebroadcaster with an erasure code: every
// generation of the broadcast — the initial layout and each staged
// one — is encoded under cfg, and the versioned FEC descriptor rides
// alongside the shard directory. The zero config is the plain
// rebroadcaster.
func NewRebroadcasterFEC(lay *dsi.Layout, cfg wire.FECConfig) (*Rebroadcaster, error) {
	t, err := NewMultiTransmitterFEC(lay, cfg)
	if err != nil {
		return nil, err
	}
	dir, err := wire.EncodeDirV(lay, 1, 0)
	if err != nil {
		return nil, err // rebroadcasting is defined by its directory
	}
	r := &Rebroadcaster{
		fcfg:    cfg,
		cur:     t,
		version: 1,
		phase:   make([]int64, lay.Channels()),
		curDir:  dir,
	}
	if r.curFec, err = wire.EncodeFECDesc(cfg, 1); err != nil {
		return nil, err
	}
	return r, nil
}

// SetObs installs the station metric bundle. Call before the broadcast
// goes live; nil (the default) counts nothing.
func (r *Rebroadcaster) SetObs(m *obs.StationMetrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.met = m
	if m != nil {
		m.DirVersion.Set(float64(r.version))
	}
}

// Layout returns the layout currently on air (the staged one only after
// Commit).
func (r *Rebroadcaster) Layout() *dsi.Layout {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur.Lay
}

// Version returns the directory version currently on air at the start
// of the transition window (the staged directory is Version()+1).
func (r *Rebroadcaster) Version() uint32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// InTransition reports whether a staged swap has not been committed.
func (r *Rebroadcaster) InTransition() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.next != nil
}

// Stage schedules a swap to a new layout of the same broadcast: the
// global seam is the first index-channel cycle boundary strictly after
// now, and each channel cuts over at its first own-cycle boundary at or
// after it. Returns the global seam slot. Staging fails while a swap is
// already in flight, or when the new layout does not describe the same
// index over the same channels. The erasure code carries over from the
// generation on air; use StageFEC to change it with the swap.
func (r *Rebroadcaster) Stage(lay *dsi.Layout, now int64) (int64, error) {
	r.mu.RLock()
	cfg := r.fcfg
	r.mu.RUnlock()
	return r.StageFEC(lay, cfg, now)
}

// StageFEC is Stage with a code change riding the swap: the staged
// generation is encoded under cfg, and the versioned FEC descriptor
// announcing it crosses the air with the new directory. Receivers
// adopt the new code at the seam exactly as they adopt the new shard
// map. The zero cfg turns coding off from the seam on.
func (r *Rebroadcaster) StageFEC(lay *dsi.Layout, cfg wire.FECConfig, now int64) (int64, error) {
	// The transmitter build is O(broadcast bytes): do it before taking
	// the write lock so concurrent readers never stall on it.
	old := r.Layout()
	if lay.X != old.X {
		return 0, fmt.Errorf("station: staged layout serves a different index")
	}
	if lay.Channels() != old.Channels() {
		return 0, fmt.Errorf("station: staged layout has %d channels, air has %d", lay.Channels(), old.Channels())
	}
	if lay.StartCh != old.StartCh {
		return 0, fmt.Errorf("station: staged layout moves the index channel")
	}
	if now < 0 {
		return 0, fmt.Errorf("station: negative stage time %d", now)
	}
	t, err := NewMultiTransmitterFEC(lay, cfg)
	if err != nil {
		return 0, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next != nil {
		return 0, fmt.Errorf("station: a directory swap is already in flight (seam %d)", r.swapSlot)
	}
	if r.cur.Lay != old {
		// A Stage+Commit raced past the pre-lock validation; the
		// control loop is a single goroutine, so this is misuse.
		return 0, fmt.Errorf("station: broadcast changed while staging")
	}

	// Global seam: next index-channel cycle boundary strictly after now.
	// On a coded broadcast the cycles — and so the seams — live in the
	// physical slot domain; units tile each cycle, so a physical cycle
	// boundary never splits a unit or its parity tail, and the staged
	// layout re-encodes cleanly from its seam.
	idx := old.StartCh
	idxLen := int64(r.cur.ChanSlots(idx))
	rel := now - r.phase[idx]
	swap := r.phase[idx] + (rel/idxLen+1)*idxLen

	seam := make([]int64, old.Channels())
	for ch := range seam {
		l := int64(r.cur.ChanSlots(ch))
		rel := swap - r.phase[ch]
		k := rel / l
		if rel%l != 0 {
			k++
		}
		seam[ch] = r.phase[ch] + k*l
	}
	dir, err := wire.EncodeDirV(lay, r.version+1, swap)
	if err != nil {
		return 0, err
	}
	fec, err := wire.EncodeFECDesc(cfg, r.version+1)
	if err != nil {
		return 0, err
	}
	r.next = t
	r.nextCfg = cfg
	r.nextFec = fec
	r.seam = seam
	r.swapSlot = swap
	r.nextDir = dir
	if r.met != nil {
		r.met.SwapsStaged.Inc()
		if cfg != r.fcfg {
			r.met.CodeSwapsStaged.Inc()
		}
	}
	return swap, nil
}

// Commit finalizes a staged swap once every channel has crossed its
// seam: the staged layout becomes current, anchored per channel at its
// cutover slot, and the version increments. It reports whether the
// commit happened (false while a channel is still streaming its last
// old cycle, or when no swap is staged).
func (r *Rebroadcaster) Commit(now int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next == nil {
		return false
	}
	for _, s := range r.seam {
		if now < s {
			return false
		}
	}
	r.cur = r.next
	r.phase = r.seam
	r.curDir = r.nextDir
	r.curFec = r.nextFec
	r.fcfg = r.nextCfg
	r.version++
	r.next = nil
	r.seam = nil
	r.nextDir = nil
	r.nextFec = nil
	if r.met != nil {
		r.met.SwapsCommitted.Inc()
		r.met.DirVersion.Set(float64(r.version))
	}
	return true
}

// PacketAt returns the packet channel ch transmits at absolute slot
// abs, together with the directory version governing it: the staged
// version past the channel's seam, the current one before.
func (r *Rebroadcaster) PacketAt(ch int, abs int64) (Packet, uint32) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.met.PacketEmitted(ch)
	if r.next != nil && abs >= r.seam[ch] {
		l := int64(r.next.ChanSlots(ch))
		return r.next.Packet(ch, int((abs-r.seam[ch])%l)), r.version + 1
	}
	l := int64(r.cur.ChanSlots(ch))
	rel := (abs - r.phase[ch]) % l
	if rel < 0 {
		rel += l
	}
	return r.cur.Packet(ch, int(rel)), r.version
}

// DirectoryAt returns the versioned shard directory on air at absolute
// slot abs: the staged directory from the global seam on (the index
// channel is the first to cut over — the announcement rides with it),
// the current one before. The returned bytes are the rebroadcaster's
// pre-encoded state: callers must not modify them.
func (r *Rebroadcaster) DirectoryAt(abs int64) ([]byte, uint32) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.next != nil && abs >= r.swapSlot {
		return r.nextDir, r.version + 1
	}
	return r.curDir, r.version
}

// FECDescAt implements FECSource: the versioned FEC descriptor on air
// at absolute slot abs, versioned in lockstep with DirectoryAt (nil on
// an uncoded rebroadcaster).
func (r *Rebroadcaster) FECDescAt(abs int64) ([]byte, uint32) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.next != nil && abs >= r.swapSlot {
		return r.nextFec, r.version + 1
	}
	return r.curFec, r.version
}

// SeamOf returns channel ch's cutover slot of the staged swap; ok is
// false when no swap is in flight.
func (r *Rebroadcaster) SeamOf(ch int) (int64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.next == nil {
		return 0, false
	}
	return r.seam[ch], true
}

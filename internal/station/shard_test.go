package station

import (
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
)

// TestShardStreamsSelfDescribing: a sharded layout's unequal-cycle
// per-channel streams — hot shards cycling several times faster than
// the cold one — rebuild the complete broadcast metadata, and the
// on-air shard directory hands a receiver exactly the geometry it needs
// to validate the pointers.
func TestShardStreamsSelfDescribing(t *testing.T) {
	ds := dataset.Uniform(180, 7, 47)
	x, err := dsi.Build(ds, dsi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately coprime shard sizes: no cycle is a multiple of
	// another, so the streams exercise genuinely unequal periods.
	bounds := []int{0, 11, 24, x.NF}
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: len(bounds), Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	for ch := 1; ch < lay.Channels(); ch++ {
		for prev := 1; prev < ch; prev++ {
			if lay.ChanLen(ch)%lay.ChanLen(prev) == 0 {
				t.Logf("note: channel %d cycle is a multiple of channel %d's", ch, prev)
			}
		}
	}
	tx, err := NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	// The receiver takes the per-channel geometry from the broadcast's
	// own directory: the codec is exercised through the full
	// transmitter -> scanner pipeline, not just in isolation.
	dirBytes, err := tx.Directory()
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]<-chan Packet, lay.Channels())
	for ch := 0; ch < lay.Channels(); ch++ {
		c := make(chan Packet, 64)
		go tx.CycleChannel(ch, c)
		streams[ch] = c
	}
	frames, err := ScanMultiDir(lay, dirBytes, streams)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for pos, fi := range frames {
		f := x.PosToFrame(pos)
		if fi.MinHC != x.MinHC(f) {
			t.Fatalf("pos %d: min HC %d, want %d", pos, fi.MinHC, x.MinHC(f))
		}
		_, num := x.FrameObjects(f)
		if len(fi.Headers) != num {
			t.Fatalf("pos %d: %d headers, want %d", pos, len(fi.Headers), num)
		}
		for i, e := range fi.Entries {
			target := x.TableAt(pos).Entries[i]
			wantCh, wantIdx := lay.DataFrameIndex(target.TargetPos)
			if int(e.Ch) != wantCh || int(e.Frame) != wantIdx || e.MinHC != target.MinHC {
				t.Fatalf("pos %d entry %d: %+v, want (%d,%d,%d)", pos, i, e, wantCh, wantIdx, target.MinHC)
			}
		}
		total += len(fi.Headers)
	}
	if total != x.DS.N() {
		t.Fatalf("%d headers total, want %d", total, x.DS.N())
	}

	// A directory contradicting the air's geometry is rejected.
	bad := append([]byte(nil), dirBytes...)
	bad[len(bad)-1] ^= 1 // last channel's cycle length
	streams2 := []<-chan Packet{}
	for ch := 0; ch < lay.Channels(); ch++ {
		c := make(chan Packet, 1)
		close(c)
		streams2 = append(streams2, c)
	}
	if _, err := ScanMultiDir(lay, bad, streams2); err == nil {
		t.Fatal("contradictory directory accepted")
	}
}

// TestStaggeredStripeStreams: phase-staggered stripe channels (frames
// wrapped across the cycle seam included) still produce self-describing
// streams.
func TestStaggeredStripeStreams(t *testing.T) {
	ds := dataset.Uniform(150, 6, 41)
	x, err := dsi.Build(ds, dsi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A nonzero switch cost makes the stagger offset a non-multiple of
	// the frame size, so some frames wrap the seam.
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{Channels: 3, Scheduler: dsi.SchedStripe, SwitchSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := scanAll(t, tx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for pos, fi := range frames {
		f := x.PosToFrame(pos)
		if fi.MinHC != x.MinHC(f) {
			t.Fatalf("pos %d: min HC %d, want %d", pos, fi.MinHC, x.MinHC(f))
		}
		total += len(fi.Headers)
	}
	if total != x.DS.N() {
		t.Fatalf("%d headers total, want %d", total, x.DS.N())
	}
}

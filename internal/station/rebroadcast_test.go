package station

import (
	"bytes"
	"sync"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/wire"
)

func buildShardLay(t *testing.T, x *dsi.Index, bounds []int) *dsi.Layout {
	t.Helper()
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: len(bounds), Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func samePacket(a, b Packet) bool {
	return a.Ch == b.Ch && a.Slot == b.Slot && a.Flags == b.Flags && bytes.Equal(a.Payload, b.Payload)
}

// TestRebroadcastNoSwapBitIdentical is the control contract: with no
// swap staged, the rebroadcaster is packet-for-packet the plain
// MultiTransmitter on every channel, and its directory is the bare
// shard directory at version 1, seam 0.
func TestRebroadcastNoSwapBitIdentical(t *testing.T) {
	ds := dataset.Uniform(180, 7, 61)
	x, err := dsi.Build(ds, dsi.Config{ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	lay := buildShardLay(t, x, []int{0, 11, 24, x.NF})
	tx, err := NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRebroadcaster(lay)
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < lay.Channels(); ch++ {
		l := lay.ChanLen(ch)
		for abs := 0; abs < 2*l+3; abs++ {
			got, ver := r.PacketAt(ch, int64(abs))
			want := tx.Packet(ch, abs%l)
			if ver != 1 || !samePacket(got, want) {
				t.Fatalf("ch %d abs %d: packet (%+v, v%d) != transmitter %+v", ch, abs, got, ver, want)
			}
		}
	}
	buf, ver := r.DirectoryAt(12345)
	if ver != 1 {
		t.Fatalf("directory: v%d", ver)
	}
	version, seam, _, err := wire.DecodeDirV(buf)
	if err != nil || version != 1 || seam != 0 {
		t.Fatalf("decoded directory v%d seam %d err %v", version, seam, err)
	}
	bare, err := tx.Directory()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[wire.DirVHeaderSize:], bare) {
		t.Fatal("versioned directory body differs from the bare directory")
	}
}

// TestRebroadcastIdenticalSwapBitIdentical: a version bump whose new
// directory carries the same shard map (the re-planner found no drift
// worth acting on, but the transmitter rotated the version anyway) must
// leave every packet of every channel unchanged, before, across, and
// after the seam — the wire/station half of the "replanning disabled is
// bit-identical" acceptance criterion.
func TestRebroadcastIdenticalSwapBitIdentical(t *testing.T) {
	ds := dataset.Uniform(200, 7, 67)
	x, err := dsi.Build(ds, dsi.Config{ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int{0, 17, 60, x.NF}
	lay1 := buildShardLay(t, x, bounds)
	lay2 := buildShardLay(t, x, bounds)
	tx, err := NewMultiTransmitter(lay1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRebroadcaster(lay1)
	if err != nil {
		t.Fatal(err)
	}
	seam, err := r.Stage(lay2, 100)
	if err != nil {
		t.Fatal(err)
	}
	maxSeam := seam
	for ch := 0; ch < lay1.Channels(); ch++ {
		if s, ok := r.SeamOf(ch); ok && s > maxSeam {
			maxSeam = s
		}
	}
	check := func() {
		for ch := 0; ch < lay1.Channels(); ch++ {
			l := lay1.ChanLen(ch)
			for abs := int64(0); abs < maxSeam+2*int64(l); abs++ {
				got, _ := r.PacketAt(ch, abs)
				want := tx.Packet(ch, int(abs%int64(l)))
				if !samePacket(got, want) {
					t.Fatalf("ch %d abs %d: identical-bounds swap changed the stream", ch, abs)
				}
			}
		}
	}
	check()
	if r.Commit(maxSeam - 1) {
		t.Fatal("committed before every channel crossed its seam")
	}
	if !r.Commit(maxSeam) {
		t.Fatal("commit refused after the transition window")
	}
	if r.Version() != 2 {
		t.Fatalf("version %d after commit", r.Version())
	}
	check()
}

// TestRebroadcastTransitionWindow stages a genuinely different shard
// map and walks the transition: the index channel cuts over at the
// global seam while data channels finish their old cycles, so both
// directory versions are on air simultaneously; after the last seam the
// new streams are self-describing under the new directory; and a stale
// receiver scanning the new streams with the old directory is rejected,
// then converges by re-fetching the directory.
func TestRebroadcastTransitionWindow(t *testing.T) {
	ds := dataset.Uniform(180, 7, 71)
	x, err := dsi.Build(ds, dsi.Config{ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	oldB := []int{0, x.NF / 3, 2 * (x.NF / 3), x.NF}
	newB := []int{0, 9, 21, x.NF}
	oldLay := buildShardLay(t, x, oldB)
	newLay := buildShardLay(t, x, newB)
	oldTx, err := NewMultiTransmitter(oldLay)
	if err != nil {
		t.Fatal(err)
	}
	newTx, err := NewMultiTransmitter(newLay)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRebroadcaster(oldLay)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(17)
	swap, err := r.Stage(newLay, now)
	if err != nil {
		t.Fatal(err)
	}
	idxLen := int64(oldLay.ChanLen(0))
	if swap <= now || swap%idxLen != 0 {
		t.Fatalf("global seam %d not an index cycle boundary after %d", swap, now)
	}

	// Per-channel seams: first old-cycle boundary at or after the swap;
	// the cold shard's long cycle must outlast the index channel's.
	mixed := false
	var maxSeam int64
	for ch := 0; ch < oldLay.Channels(); ch++ {
		s, ok := r.SeamOf(ch)
		if !ok {
			t.Fatal("no seam during transition")
		}
		l := int64(oldLay.ChanLen(ch))
		if s < swap || s%l != 0 || s-swap >= l {
			t.Fatalf("ch %d seam %d (cycle %d, swap %d) not the first boundary at/after the swap", ch, s, l, swap)
		}
		if s > swap {
			mixed = true
		}
		if s > maxSeam {
			maxSeam = s
		}
	}
	if !mixed {
		t.Fatal("every channel seams exactly at the swap: transition window is empty, pick other bounds")
	}

	// During the window: old packets (old version) before a channel's
	// seam, new packets (new version) after.
	for ch := 0; ch < oldLay.Channels(); ch++ {
		s, _ := r.SeamOf(ch)
		for abs := swap - 5; abs < maxSeam+5; abs++ {
			got, ver := r.PacketAt(ch, abs)
			if abs < s {
				want := oldTx.Packet(ch, int(abs%int64(oldLay.ChanLen(ch))))
				if ver != 1 || !samePacket(got, want) {
					t.Fatalf("ch %d abs %d: pre-seam packet not the old stream (v%d)", ch, abs, ver)
				}
			} else {
				want := newTx.Packet(ch, int((abs-s)%int64(newLay.ChanLen(ch))))
				if ver != 2 || !samePacket(got, want) {
					t.Fatalf("ch %d abs %d: post-seam packet not the new stream (v%d)", ch, abs, ver)
				}
			}
		}
	}

	// The directory announcement leads the data seams: old before the
	// swap, new (with the seam slot) from it.
	if _, ver := r.DirectoryAt(swap - 1); ver != 1 {
		t.Fatalf("pre-swap directory v%d", ver)
	}
	bufNew, ver := r.DirectoryAt(swap)
	if ver != 2 {
		t.Fatalf("post-swap directory v%d", ver)
	}
	version, seam, _, err := wire.DecodeDirV(bufNew)
	if err != nil || version != 2 || seam != swap {
		t.Fatalf("new directory decodes to v%d seam %d err %v", version, seam, err)
	}

	// A stale receiver scans the post-seam streams against the OLD
	// directory: the geometry contradicts the air and the scan is
	// rejected rather than silently misassembling tables.
	collect := func(lay *dsi.Layout) []<-chan Packet {
		streams := make([]<-chan Packet, lay.Channels())
		for ch := 0; ch < lay.Channels(); ch++ {
			s, _ := r.SeamOf(ch)
			c := make(chan Packet, lay.ChanLen(ch))
			for i := 0; i < lay.ChanLen(ch); i++ {
				p, _ := r.PacketAt(ch, s+int64(i))
				c <- p
			}
			close(c)
			streams[ch] = c
		}
		return streams
	}
	oldDir, err := oldTx.Directory()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScanMultiDir(newLay, oldDir, collect(newLay)); err == nil {
		t.Fatal("stale directory accepted against the new streams")
	}
	// Convergence: re-fetch the announced directory and rescan — the
	// new streams are fully self-describing.
	frames, err := ScanMultiDir(newLay, bufNew[wire.DirVHeaderSize:], collect(newLay))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for pos, fi := range frames {
		if fi.MinHC != x.MinHC(x.PosToFrame(pos)) {
			t.Fatalf("pos %d: min HC %d", pos, fi.MinHC)
		}
		total += len(fi.Headers)
	}
	if total != ds.N() {
		t.Fatalf("%d headers, want %d", total, ds.N())
	}

	// After the last seam the swap commits and the new schedule is
	// simply on air.
	if !r.Commit(maxSeam) {
		t.Fatal("commit refused")
	}
	if r.Layout() != newLay || r.Version() != 2 {
		t.Fatalf("committed to %v v%d", r.Layout(), r.Version())
	}
	for ch := 0; ch < newLay.Channels(); ch++ {
		abs := maxSeam + 7
		got, ver := r.PacketAt(ch, abs)
		s := r.phase[ch]
		want := newTx.Packet(ch, int((abs-s)%int64(newLay.ChanLen(ch))))
		if ver != 2 || !samePacket(got, want) {
			t.Fatalf("ch %d: committed stream broken", ch)
		}
	}
}

// TestRebroadcastStageErrors covers the staging validation.
func TestRebroadcastStageErrors(t *testing.T) {
	ds := dataset.Uniform(150, 7, 73)
	x, err := dsi.Build(ds, dsi.Config{ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	lay := buildShardLay(t, x, []int{0, 20, x.NF})
	r, err := NewRebroadcaster(lay)
	if err != nil {
		t.Fatal(err)
	}

	other := dataset.Uniform(150, 7, 74)
	ox, err := dsi.Build(other, dsi.Config{ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Stage(buildShardLay(t, ox, []int{0, 20, ox.NF}), 0); err == nil {
		t.Error("different index staged")
	}
	if _, err := r.Stage(buildShardLay(t, x, []int{0, 10, 20, x.NF}), 0); err == nil {
		t.Error("different channel count staged")
	}
	if _, err := r.Stage(lay, -1); err == nil {
		t.Error("negative stage time accepted")
	}
	if _, err := r.Stage(buildShardLay(t, x, []int{0, 30, x.NF}), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Stage(buildShardLay(t, x, []int{0, 40, x.NF}), 5); err == nil {
		t.Error("double stage accepted")
	}
	// A single-channel layout has no directory to version.
	single, err := dsi.NewLayout(x, dsi.MultiConfig{Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRebroadcaster(single); err == nil {
		t.Error("directoryless layout rebroadcast")
	}
}

// TestRebroadcastConcurrent hammers PacketAt/DirectoryAt from reader
// goroutines while the control goroutine stages and commits — the
// race-detector contract of the transmitter's swap path.
func TestRebroadcastConcurrent(t *testing.T) {
	ds := dataset.Uniform(150, 7, 79)
	x, err := dsi.Build(ds, dsi.Config{ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	lay := buildShardLay(t, x, []int{0, 15, x.NF})
	r, err := NewRebroadcaster(lay)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for abs := int64(g); ; abs += 3 {
				select {
				case <-stop:
					return
				default:
				}
				ch := int(abs) % lay.Channels()
				r.PacketAt(ch, abs)
				if abs%7 == 0 {
					r.DirectoryAt(abs)
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		seam, err := r.Stage(buildShardLay(t, x, []int{0, 10 + i, x.NF}), int64(i*100))
		if err != nil {
			t.Fatal(err)
		}
		deadline := seam
		for ch := 0; ch < lay.Channels(); ch++ {
			if s, ok := r.SeamOf(ch); ok && s > deadline {
				deadline = s
			}
		}
		if !r.Commit(deadline) {
			t.Fatal("commit refused at its own deadline")
		}
	}
	close(stop)
	wg.Wait()
}

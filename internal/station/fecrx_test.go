package station

import (
	"math/rand"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
	"dsi/internal/wire"
)

var _ dsi.Receiver = (*FECReceiver)(nil)

// Codes the tests sweep: a light interleaved XOR and a heavier
// Reed-Solomon configuration.
func xorCode() wire.FECConfig {
	return wire.FECConfig{
		Table:  wire.FECCode{Groups: 1, Parity: 1},
		Object: wire.FECCode{Groups: 4, Parity: 1},
	}
}

func rsCode() wire.FECConfig {
	return wire.FECConfig{
		Table:  wire.FECCode{Groups: 1, Parity: 2},
		Object: wire.FECCode{Groups: 2, Parity: 3},
	}
}

// TestFECGeomInvariants checks the physical geometry derivation on the
// single-channel and sharded layouts: units tile the logical cycle,
// the slot maps invert each other, and the parity tail interleaves its
// groups.
func TestFECGeomInvariants(t *testing.T) {
	_, x, shard := wireTestBed(t, 240, 443, quarterBounds)
	for _, tc := range []struct {
		name string
		lay  *dsi.Layout
		cfg  wire.FECConfig
	}{
		{"single-xor", x.SingleLayout(), xorCode()},
		{"single-rs", x.SingleLayout(), rsCode()},
		{"shard-xor", shard, xorCode()},
		{"shard-rs", shard, rsCode()},
	} {
		g, err := newFECGeom(tc.lay, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for ch := range g.chs {
			c := &g.chs[ch]
			logLen := tc.lay.ChanLen(ch)
			wantPhys := 0
			nextLog := 0
			for ui := range c.units {
				u := &c.units[ui]
				if u.logStart != nextLog {
					t.Fatalf("%s ch%d unit %d starts at logical %d, want %d (units must tile)",
						tc.name, ch, ui, u.logStart, nextLog)
				}
				if u.physStart != wantPhys {
					t.Fatalf("%s ch%d unit %d starts at physical %d, want %d",
						tc.name, ch, ui, u.physStart, wantPhys)
				}
				code := g.code(u.table)
				wantPhys += u.n + code.Tail()
				nextLog += u.n
			}
			if nextLog != logLen {
				t.Fatalf("%s ch%d: units cover %d logical slots, cycle has %d", tc.name, ch, nextLog, logLen)
			}
			if c.physLen != wantPhys || len(c.logOf) != wantPhys || len(c.unitOf) != wantPhys || len(c.member) != wantPhys {
				t.Fatalf("%s ch%d: physLen %d, maps %d/%d/%d, want %d",
					tc.name, ch, c.physLen, len(c.logOf), len(c.unitOf), len(c.member), wantPhys)
			}
			for s := 0; s < logLen; s++ {
				p := c.log2phys[s]
				if c.logOf[p] != int32(s) || c.member[p] < 0 {
					t.Fatalf("%s ch%d: logical %d -> physical %d -> logical %d (member %d)",
						tc.name, ch, s, p, c.logOf[p], c.member[p])
				}
			}
			for p := 0; p < c.physLen; p++ {
				u := &c.units[c.unitOf[p]]
				if m := c.member[p]; m >= 0 {
					if u.physStart+int(m) != p {
						t.Fatalf("%s ch%d: physical %d claims member %d of unit at %d", tc.name, ch, p, m, u.physStart)
					}
				} else {
					tail := p - u.physStart - u.n
					code := g.code(u.table)
					if tail < 0 || tail >= code.Tail() {
						t.Fatalf("%s ch%d: physical %d is parity offset %d of a %d-slot tail", tc.name, ch, p, tail, code.Tail())
					}
				}
			}
		}
	}
}

// TestFECTransmitterParityDecodes walks one coded cycle of every
// channel and checks each parity packet decodes to a header consistent
// with the geometry — the receiver's readTail validation accepts
// exactly what the transmitter emits.
func TestFECTransmitterParityDecodes(t *testing.T) {
	_, x, lay := wireTestBed(t, 240, 449, quarterBounds)
	cfg := rsCode()
	mt, err := NewMultiTransmitterFEC(lay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parity := 0
	for ch := 0; ch < lay.Channels(); ch++ {
		c := &mt.fec.chs[ch]
		for slot := 0; slot < mt.ChanSlots(ch); slot++ {
			p := mt.Packet(ch, slot)
			if c.member[slot] >= 0 {
				if p.Flags&flagParity != 0 {
					t.Fatalf("ch%d slot %d: content slot flagged as parity", ch, slot)
				}
				continue
			}
			parity++
			if p.Flags&flagParity == 0 {
				t.Fatalf("ch%d slot %d: parity slot lacks the parity flag", ch, slot)
			}
			h, sym, err := wire.DecodeParity(p.Payload, x.Cfg.Capacity)
			if err != nil {
				t.Fatalf("ch%d slot %d: %v", ch, slot, err)
			}
			u := &c.units[c.unitOf[slot]]
			code := mt.fec.code(u.table)
			off := slot - u.physStart - u.n
			wantGrp, wantRow := off%code.Groups, off/code.Groups
			members, k := code.GroupMembers(u.n, wantGrp)
			if h.Unit != uint32(u.logStart) || int(h.Group) != wantGrp || int(h.Index) != wantRow ||
				int(h.R) != code.Parity || int(h.K) != k || h.Members != members || len(sym) != x.Cfg.Capacity {
				t.Fatalf("ch%d slot %d: parity header %+v contradicts geometry (unit %d grp %d row %d)",
					ch, slot, h, u.logStart, wantGrp, wantRow)
			}
		}
	}
	if parity == 0 {
		t.Fatal("coded transmitter emitted no parity")
	}
}

// TestFECReceiverRate1BitIdentical is the regression the zero config
// must hold: a rate-1 FEC receiver answers every query with exactly
// the results and metrics of the plain WireReceiver — single-channel
// and sharded, window and kNN, loss or no loss, and across a staged
// directory swap.
func TestFECReceiverRate1BitIdentical(t *testing.T) {
	ds, x, lay := wireTestBed(t, 260, 457, quarterBounds)
	lay1, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: skewedBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}

	type bed struct {
		name string
		lay  *dsi.Layout
		src  PacketSource
	}
	mt, err := NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	singleLay := x.SingleLayout()
	tx, err := NewTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRebroadcaster(lay)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Stage(lay1, 50); err != nil {
		t.Fatal(err)
	}
	beds := []bed{
		{"single", singleLay, tx},
		{"shard", lay, mt},
		{"swap", lay, rb},
	}

	rng := rand.New(rand.NewSource(9))
	side := int(ds.Curve.Side())
	for _, b := range beds {
		for trial := 0; trial < 8; trial++ {
			probe := rng.Int63n(int64(b.lay.ProbeCycle()))
			seed := rng.Int63()
			mkLoss := func() *broadcast.LossModel {
				if trial%2 == 0 {
					return nil
				}
				m := broadcast.GilbertForTheta(0.3, 4, seed)
				m.AffectsData = true
				return m
			}
			wrx, err := NewWireReceiver(b.lay, 1, b.src, probe, mkLoss())
			if err != nil {
				t.Fatal(err)
			}
			frx, err := NewFECReceiver(b.lay, 1, b.src, wire.FECConfig{}, probe, mkLoss())
			if err != nil {
				t.Fatal(err)
			}
			wantSess, err := dsi.Open(x, dsi.WithReceiver(wrx))
			if err != nil {
				t.Fatal(err)
			}
			gotSess, err := dsi.Open(x, dsi.WithReceiver(frx))
			if err != nil {
				t.Fatal(err)
			}
			if trial%3 == 2 {
				q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
				k := 1 + rng.Intn(5)
				wantIDs, wantSt := wantSess.KNN(q, k, dsi.Conservative)
				gotIDs, gotSt := gotSess.KNN(q, k, dsi.Conservative)
				if !equalIDs(gotIDs, wantIDs) || gotSt != wantSt {
					t.Fatalf("%s trial %d: rate-1 kNN (%v,%+v) != wire (%v,%+v)", b.name, trial, gotIDs, gotSt, wantIDs, wantSt)
				}
			} else {
				w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 35, ds.Curve.Side())
				wantIDs, wantSt := wantSess.Window(w)
				gotIDs, gotSt := gotSess.Window(w)
				if !equalIDs(gotIDs, wantIDs) || gotSt != wantSt {
					t.Fatalf("%s trial %d: rate-1 window (%v,%+v) != wire (%v,%+v)", b.name, trial, gotIDs, gotSt, wantIDs, wantSt)
				}
			}
		}
	}
}

// runFECWindows answers windows and kNNs through a FEC receiver over
// the source, cross-checking every result against brute force.
func runFECWindows(t *testing.T, ds *dataset.Dataset, x *dsi.Index, lay *dsi.Layout, src PacketSource, cfg wire.FECConfig,
	trials int, seed int64, mkLoss func(rng *rand.Rand) *broadcast.LossModel) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	side := int(ds.Curve.Side())
	recovered := 0
	for trial := 0; trial < trials; trial++ {
		rx, err := NewFECReceiver(lay, 1, src, cfg, rng.Int63n(4096), mkLoss(rng))
		if err != nil {
			t.Fatal(err)
		}
		sess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			t.Fatal(err)
		}
		if trial%3 == 2 {
			q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
			k := 1 + rng.Intn(5)
			got, _ := sess.KNN(q, k, dsi.Conservative)
			want, _ := ds.KNNBrute(q, k)
			if !equalIDs(got, want) {
				t.Fatalf("trial %d: coded kNN %v, want %v", trial, got, want)
			}
		} else {
			w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 40, ds.Curve.Side())
			got, _ := sess.Window(w)
			want := ds.WindowBrute(w)
			if !equalIDs(got, want) {
				t.Fatalf("trial %d: coded window returned %d objects, want %d", trial, len(got), len(want))
			}
		}
		recovered += rx.Recovered()
	}
	if recovered == 0 {
		t.Fatal("no packet was reconstructed from parity; recovery went unexercised")
	}
}

// TestFECReceiverRecoversSingleChannel runs the coded single-channel
// broadcast under bursty loss on every packet kind: queries must
// answer exactly, recovering in-stream instead of wedging.
func TestFECReceiverRecoversSingleChannel(t *testing.T) {
	ds := dataset.Uniform(220, 7, 461)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []wire.FECConfig{xorCode(), rsCode()} {
		tx, err := NewTransmitterFEC(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		runFECWindows(t, ds, x, x.SingleLayout(), tx, cfg, 8, 463, func(rng *rand.Rand) *broadcast.LossModel {
			m := broadcast.GilbertForTheta(0.3, 3, rng.Int63())
			m.AffectsData = true
			return m
		})
	}
}

// TestFECReceiverRecoversShard runs the coded sharded broadcast under
// bursty loss across all four channels.
func TestFECReceiverRecoversShard(t *testing.T) {
	ds, x, lay := wireTestBed(t, 260, 467, quarterBounds)
	for _, cfg := range []wire.FECConfig{xorCode(), rsCode()} {
		mt, err := NewMultiTransmitterFEC(lay, cfg)
		if err != nil {
			t.Fatal(err)
		}
		runFECWindows(t, ds, x, lay, mt, cfg, 8, 479, func(rng *rand.Rand) *broadcast.LossModel {
			m := broadcast.GilbertForTheta(0.35, 3, rng.Int63())
			m.AffectsData = true
			return m
		})
	}
}

// TestFECReceiverBurstBeyondDistance drives bursts much longer than
// the code can correct (burst 8 against single-parity groups of 4):
// recovery must fail cleanly, fall back to the rebroadcast-wait retry,
// and still converge to exact results.
func TestFECReceiverBurstBeyondDistance(t *testing.T) {
	ds := dataset.Uniform(200, 7, 487)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := wire.FECConfig{
		Table:  wire.FECCode{Groups: 1, Parity: 1},
		Object: wire.FECCode{Groups: 4, Parity: 1},
	}
	tx, err := NewTransmitterFEC(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runFECWindows(t, ds, x, x.SingleLayout(), tx, cfg, 6, 491, func(rng *rand.Rand) *broadcast.LossModel {
		m := broadcast.GilbertForTheta(0.5, 8, rng.Int63())
		m.AffectsData = true
		return m
	})
}

// fecFaultSource is faultSource over a coded station: it forwards the
// FEC descriptor so the receiver constructor's handshake holds.
type fecFaultSource struct {
	faultSource
}

func (f *fecFaultSource) FECDescAt(abs int64) ([]byte, uint32) {
	return f.PacketSource.(FECSource).FECDescAt(abs)
}

// TestFECReceiverLostParityPackets blanks a rotating subset of parity
// packets on top of bursty content loss: readTail treats them as
// erased rows, recovery degrades where the surviving rows run short,
// and every query still converges exactly.
func TestFECReceiverLostParityPackets(t *testing.T) {
	ds := dataset.Uniform(200, 7, 499)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := rsCode()
	tx, err := NewTransmitterFEC(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := &fecFaultSource{faultSource{PacketSource: tx, mutate: func(ch int, abs int64, p Packet) (Packet, bool) {
		if p.Flags&flagParity != 0 && abs%3 == 0 {
			p.Payload = p.Payload[:len(p.Payload)/2] // DecodeParity must reject
			return p, true
		}
		return p, false
	}}}
	runFECWindows(t, ds, x, x.SingleLayout(), src, cfg, 6, 503, func(rng *rand.Rand) *broadcast.LossModel {
		m := broadcast.GilbertForTheta(0.3, 3, rng.Int63())
		m.AffectsData = true
		return m
	})
	if src.mutations == 0 {
		t.Fatal("no parity packet was mangled; the fault path went unexercised")
	}
}

// TestFECReceiverResyncAcrossSwap stages a directory swap on a coded
// rebroadcaster while coded queries are in flight under loss: clients
// pick up the version bump (directory and FEC descriptor both cross
// the lossy air), re-anchor in the physical slot domain, and answer
// exactly.
func TestFECReceiverResyncAcrossSwap(t *testing.T) {
	ds, x, lay0 := wireTestBed(t, 260, 509, quarterBounds)
	lay1, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: skewedBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := xorCode()

	rng := rand.New(rand.NewSource(10))
	side := int(ds.Curve.Side())
	resynced := 0
	for trial := 0; trial < 10; trial++ {
		rb, err := NewRebroadcasterFEC(lay0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		probe := rng.Int63n(int64(2 * lay0.ProbeCycle()))
		if _, err := rb.Stage(lay1, probe); err != nil {
			t.Fatal(err)
		}
		var loss *broadcast.LossModel
		if trial%2 == 1 {
			loss = broadcast.GilbertForTheta(0.25, 3, rng.Int63())
			loss.AffectsData = true
		}
		rx, err := NewFECReceiver(lay0, 1, rb, cfg, probe, loss)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			t.Fatal(err)
		}
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 50, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: coded window across swap returned %d objects, want %d", trial, len(got), len(want))
		}
		if rx.Version() == 2 {
			resynced++
			if sess.Layout().ShardBounds()[1] != skewedBounds(x.NF)[1] {
				t.Fatalf("trial %d: resynced session still on old bounds", trial)
			}
		}
	}
	if resynced == 0 {
		t.Fatal("no trial crossed the seam with a resync; the test exercises nothing")
	}
}

// TestFECReceiverLostDirectoryAcrossSwap corrupts the directory for a
// window after the seam of a coded swap: Poll keeps rejecting it (and
// paying for the attempts), the receiver rides out the transition on
// the old code geometry, and completes exactly once it heals.
func TestFECReceiverLostDirectoryAcrossSwap(t *testing.T) {
	ds, x, lay0 := wireTestBed(t, 240, 521, quarterBounds)
	lay1, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: skewedBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := xorCode()
	rng := rand.New(rand.NewSource(11))
	side := int(ds.Curve.Side())
	resynced := 0
	for trial := 0; trial < 8; trial++ {
		rb, err := NewRebroadcasterFEC(lay0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		probe := rng.Int63n(int64(2 * lay0.ProbeCycle()))
		seam, err := rb.Stage(lay1, probe)
		if err != nil {
			t.Fatal(err)
		}
		healAt := seam + int64(2*rb.cur.ChanSlots(0))
		src := &fecFaultSource{faultSource{PacketSource: rb, mutateDir: func(abs int64, dir []byte) []byte {
			if dir != nil && abs >= seam && abs < healAt {
				bad := append([]byte(nil), dir...)
				bad[0] ^= 0xff
				return bad
			}
			return dir
		}}}
		rx, err := NewFECReceiver(lay0, 1, src, cfg, probe, nil)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			t.Fatal(err)
		}
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 55, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: lost-directory coded run returned %d objects, want %d", trial, len(got), len(want))
		}
		if rx.Version() == 2 {
			resynced++
		}
	}
	if resynced == 0 {
		t.Fatal("no trial survived into the healed directory; the test exercises nothing")
	}
}

// TestFECReceiverStaleTuneIn tunes a coded client one directory
// version behind a committed swap, landing mid-cycle — often inside a
// unit or its parity tail: the current directory must be received over
// the lossy air and the query then converges exactly on the new
// schedule and its re-derived code geometry.
func TestFECReceiverStaleTuneIn(t *testing.T) {
	ds, x, lay0 := wireTestBed(t, 240, 523, quarterBounds)
	lay1, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: skewedBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := xorCode()
	rb, err := NewRebroadcasterFEC(lay0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seam, err := rb.Stage(lay1, 100)
	if err != nil {
		t.Fatal(err)
	}
	horizon := seam
	for ch := 0; ch < lay0.Channels(); ch++ {
		if s, ok := rb.SeamOf(ch); ok && s > horizon {
			horizon = s
		}
	}
	if !rb.Commit(horizon) {
		t.Fatal("commit refused past every seam")
	}

	rng := rand.New(rand.NewSource(12))
	side := int(ds.Curve.Side())
	for trial := 0; trial < 8; trial++ {
		probe := horizon + rng.Int63n(int64(2*lay1.ProbeCycle()))
		var loss *broadcast.LossModel
		if trial%2 == 1 {
			loss = broadcast.GilbertForTheta(0.3, 3, rng.Int63())
		}
		rx, err := NewFECReceiver(lay0, 1, rb, cfg, probe, loss)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			t.Fatal(err)
		}
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 45, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: stale coded tune-in returned %d objects, want %d", trial, len(got), len(want))
		}
		if rx.Version() != 2 {
			t.Fatalf("trial %d: stale receiver still at version %d", trial, rx.Version())
		}
	}
}

// TestNewFECReceiverHandshake rejects a code mismatch between receiver
// catalog and broadcast, and a coded receiver over an uncoded station.
func TestNewFECReceiverHandshake(t *testing.T) {
	_, _, lay := wireTestBed(t, 240, 541, quarterBounds)
	coded, err := NewMultiTransmitterFEC(lay, xorCode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFECReceiver(lay, 1, coded, rsCode(), 0, nil); err == nil {
		t.Fatal("code mismatch accepted")
	}
	plain, err := NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFECReceiver(lay, 1, plain, xorCode(), 0, nil); err == nil {
		t.Fatal("coded receiver accepted an uncoded broadcast")
	}
}

// TestRecoverUnitPatterns drives the group-interleaved solver directly
// over scattered member and parity losses.
func TestRecoverUnitPatterns(t *testing.T) {
	const n, capacity = 8, 16
	rng := rand.New(rand.NewSource(547))
	payload := make([][]byte, n)
	for i := range payload {
		payload[i] = make([]byte, capacity)
		rng.Read(payload[i])
	}
	mkTail := func(code wire.FECCode) [][]byte {
		tail := make([][]byte, code.Tail())
		for grp := 0; grp < code.Groups; grp++ {
			var data [][]byte
			for i := grp; i < n; i += code.Groups {
				data = append(data, append([]byte(nil), payload[i]...))
			}
			for j, sym := range wire.RSParity(data, code.Parity) {
				tail[j*code.Groups+grp] = sym
			}
		}
		return tail
	}
	for _, tc := range []struct {
		name     string
		code     wire.FECCode
		lostM    uint64 // members erased
		lostTail []int  // tail offsets erased
		need     uint64
		wantOK   bool
	}{
		{"xor-one-per-group", wire.FECCode{Groups: 4, Parity: 1}, 0b0011, nil, 0b0011, true},
		{"xor-two-in-group", wire.FECCode{Groups: 4, Parity: 1}, 0b10001, nil, 0b10001, false},
		{"xor-unneeded-group-beyond-distance", wire.FECCode{Groups: 4, Parity: 1}, 0b110010, nil, 0b10000, true},
		{"rs-heavy-scattered", wire.FECCode{Groups: 2, Parity: 3}, 0b0010101, nil, 0b0010101, true},
		{"rs-lost-parity-row", wire.FECCode{Groups: 2, Parity: 3}, 0b0101, []int{0, 3}, 0b0101, true},
		{"rs-too-few-rows", wire.FECCode{Groups: 2, Parity: 2}, 0b0101, []int{0, 2}, 0b0101, false},
	} {
		tail := mkTail(tc.code)
		for _, off := range tc.lostTail {
			tail[off] = nil
		}
		pay := make([][]byte, n)
		okm := uint64(0)
		for i := 0; i < n; i++ {
			if tc.lostM&(1<<uint(i)) == 0 {
				pay[i] = payload[i]
				okm |= 1 << uint(i)
			}
		}
		syms, ok := recoverUnit(tc.code, n, capacity, pay, okm, tail, tc.need)
		if ok != tc.wantOK {
			t.Fatalf("%s: recoverUnit ok=%v, want %v", tc.name, ok, tc.wantOK)
		}
		if !ok {
			continue
		}
		for i := 0; i < n; i++ {
			if tc.lostM&(1<<uint(i)) != 0 && tc.need&(1<<uint(i)) != 0 {
				if syms[i] == nil {
					t.Fatalf("%s: needed member %d not recovered", tc.name, i)
				}
				if !equalBytes(syms[i], payload[i]) {
					t.Fatalf("%s: member %d recovered wrong", tc.name, i)
				}
			}
		}
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package station

import (
	"math/rand"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
)

// wireTestBed builds a sharded broadcast whose tables carry
// multi-channel pointers (ReserveMCPtr) so the wire formats encode.
func wireTestBed(t testing.TB, n int, seed int64, bounds func(nf int) []int) (*dataset.Dataset, *dsi.Index, *dsi.Layout) {
	t.Helper()
	ds := dataset.Uniform(n, 7, seed)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels:    4,
		Scheduler:   dsi.SchedShard,
		SwitchSlots: 2,
		ShardBounds: bounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, x, lay
}

func quarterBounds(nf int) []int { return []int{0, nf / 4, nf / 2, nf} }
func skewedBounds(nf int) []int  { return []int{0, nf / 8, 7 * nf / 8, nf} }

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWireReceiverBitIdenticalToSim is the tentpole regression: over a
// static transmitter, byte-level reception answers every query with
// exactly the results and cost metrics of the simulator fast path —
// loss or no loss, window or kNN, across session reuse.
func TestWireReceiverBitIdenticalToSim(t *testing.T) {
	ds, x, lay := wireTestBed(t, 280, 409, quarterBounds)
	mt, err := NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewWireReceiver(lay, 1, mt, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	wireSess, err := dsi.Open(x, dsi.WithReceiver(rx))
	if err != nil {
		t.Fatal(err)
	}
	simSess, err := dsi.Open(x, dsi.WithLayout(lay))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	side := int(ds.Curve.Side())
	for trial := 0; trial < 16; trial++ {
		probe := rng.Int63n(int64(lay.ProbeCycle()))
		var theta float64
		if trial%2 == 1 {
			theta = 0.3
		}
		seed := rng.Int63()
		mkLoss := func() *broadcast.LossModel {
			if theta == 0 {
				return nil
			}
			m := broadcast.GilbertForTheta(theta, 4, seed)
			m.AffectsData = true
			return m
		}
		simSess.Tune(probe, mkLoss())
		wireSess.Tune(probe, mkLoss())
		if trial%3 == 2 {
			q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
			k := 1 + rng.Intn(6)
			wantIDs, wantSt := simSess.KNN(q, k, dsi.Conservative)
			gotIDs, gotSt := wireSess.KNN(q, k, dsi.Conservative)
			if !equalIDs(gotIDs, wantIDs) || gotSt != wantSt {
				t.Fatalf("trial %d: wire kNN (%v,%+v) != sim (%v,%+v)", trial, gotIDs, gotSt, wantIDs, wantSt)
			}
		} else {
			w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 30, ds.Curve.Side())
			wantIDs, wantSt := simSess.Window(w)
			gotIDs, gotSt := wireSess.Window(w)
			if !equalIDs(gotIDs, wantIDs) || gotSt != wantSt {
				t.Fatalf("trial %d: wire window (%v,%+v) != sim (%v,%+v)", trial, gotIDs, gotSt, wantIDs, wantSt)
			}
		}
	}
}

// TestWireReceiverSingleChannelBitIdentical runs the classic single-
// channel byte stream (Transmitter, wire.DecodeTable) against the
// classic simulator client.
func TestWireReceiverSingleChannelBitIdentical(t *testing.T) {
	ds := dataset.Uniform(220, 7, 11)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	side := int(ds.Curve.Side())
	for trial := 0; trial < 10; trial++ {
		probe := rng.Int63n(int64(x.Prog.Len()))
		seed := rng.Int63()
		mkLoss := func() *broadcast.LossModel {
			if trial%2 == 0 {
				return nil
			}
			return broadcast.NewLossModel(0.4, seed)
		}
		rx, err := NewWireReceiver(x.SingleLayout(), 1, tx, probe, mkLoss())
		if err != nil {
			t.Fatal(err)
		}
		wireSess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			t.Fatal(err)
		}
		sim := dsi.NewMultiClient(x.SingleLayout(), probe, mkLoss())
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 35, ds.Curve.Side())
		wantIDs, wantSt := sim.Window(w)
		gotIDs, gotSt := wireSess.Window(w)
		if !equalIDs(gotIDs, wantIDs) || gotSt != wantSt {
			t.Fatalf("trial %d: wire (%v,%+v) != sim (%v,%+v)", trial, gotIDs, gotSt, wantIDs, wantSt)
		}
	}
}

// TestWireReceiverResyncAcrossSwap drives the drift experiment's
// resync behavior byte-level: a rebroadcaster swaps its shard
// directory at a cycle seam while queries are in flight; clients learn
// the bump from the versioned directory — which itself crosses the
// lossy air — re-seed mid-query, and still answer exactly.
func TestWireReceiverResyncAcrossSwap(t *testing.T) {
	ds, x, lay0 := wireTestBed(t, 260, 413, quarterBounds)
	lay1, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: skewedBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	side := int(ds.Curve.Side())
	resynced := 0
	for trial := 0; trial < 12; trial++ {
		rb, err := NewRebroadcaster(lay0)
		if err != nil {
			t.Fatal(err)
		}
		probe := rng.Int63n(int64(lay0.ProbeCycle()))
		if _, err := rb.Stage(lay1, probe); err != nil {
			t.Fatal(err)
		}
		var loss *broadcast.LossModel
		if trial%2 == 1 {
			loss = broadcast.GilbertForTheta(0.25, 4, rng.Int63())
			loss.AffectsData = true
		}
		rx, err := NewWireReceiver(lay0, 1, rb, probe, loss)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			t.Fatal(err)
		}
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 50, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: window across swap returned %d objects, want %d", trial, len(got), len(want))
		}
		if rx.Version() == 2 {
			resynced++
			if sess.Layout().ShardBounds()[1] != skewedBounds(x.NF)[1] {
				t.Fatalf("trial %d: resynced session still on old bounds %v", trial, sess.Layout().ShardBounds())
			}
		}
	}
	if resynced == 0 {
		t.Fatal("no trial crossed the seam with a resync; the test exercises nothing")
	}
}

// TestWireReceiverStaleTuneIn tunes a client whose catalog is one
// directory version behind a fully committed swap: every payload is
// initially undecodable, the current directory must be received over
// the lossy air, and the query then converges on the new schedule with
// exact results.
func TestWireReceiverStaleTuneIn(t *testing.T) {
	ds, x, lay0 := wireTestBed(t, 260, 421, quarterBounds)
	lay1, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: skewedBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRebroadcaster(lay0)
	if err != nil {
		t.Fatal(err)
	}
	seam, err := rb.Stage(lay1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Commit once every channel has crossed its seam.
	horizon := seam
	for ch := 0; ch < lay0.Channels(); ch++ {
		if s, ok := rb.SeamOf(ch); ok && s > horizon {
			horizon = s
		}
	}
	if !rb.Commit(horizon) {
		t.Fatal("commit refused past every seam")
	}

	rng := rand.New(rand.NewSource(8))
	side := int(ds.Curve.Side())
	for trial := 0; trial < 10; trial++ {
		probe := horizon + rng.Int63n(int64(lay1.ProbeCycle()))
		var loss *broadcast.LossModel
		if trial%2 == 1 {
			loss = broadcast.GilbertForTheta(0.3, 4, rng.Int63())
		}
		rx, err := NewWireReceiver(lay0, 1, rb, probe, loss)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			t.Fatal(err)
		}
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 45, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: stale tune-in returned %d objects, want %d", trial, len(got), len(want))
		}
		if rx.Version() != 2 {
			t.Fatalf("trial %d: stale receiver still at version %d", trial, rx.Version())
		}
	}
}

// faultSource wraps a PacketSource with deterministic payload
// corruption for the receiver fault-path tests.
type faultSource struct {
	PacketSource
	mutate    func(ch int, abs int64, p Packet) (Packet, bool)
	mutateDir func(abs int64, dir []byte) []byte
	mutations int
}

func (f *faultSource) PacketAt(ch int, abs int64) (Packet, uint32) {
	p, v := f.PacketSource.PacketAt(ch, abs)
	if f.mutate != nil {
		var hit bool
		if p, hit = f.mutate(ch, abs, p); hit {
			f.mutations++
		}
	}
	return p, v
}

func (f *faultSource) DirectoryAt(abs int64) ([]byte, uint32) {
	d, v := f.PacketSource.DirectoryAt(abs)
	if f.mutateDir != nil {
		d = f.mutateDir(abs, d)
	}
	return d, v
}

// runFaultWindows answers windows through a wire receiver over the
// given source and cross-checks every result against brute force: the
// convergence-not-wedging contract of the fault paths.
func runFaultWindows(t *testing.T, ds *dataset.Dataset, x *dsi.Index, lay *dsi.Layout, src PacketSource, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	side := int(ds.Curve.Side())
	for trial := 0; trial < trials; trial++ {
		probe := rng.Int63n(int64(lay.ProbeCycle()))
		rx, err := NewWireReceiver(lay, 1, src, probe, nil)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			t.Fatal(err)
		}
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 40, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: faulted stream returned %d objects, want %d", trial, len(got), len(want))
		}
	}
}

// TestWireReceiverTruncatedTablePackets truncates a rotating subset of
// index-table packets mid-stream: the decode layer must reject the
// short tables and the client must converge through retries.
func TestWireReceiverTruncatedTablePackets(t *testing.T) {
	ds, x, lay := wireTestBed(t, 240, 431, quarterBounds)
	mt, err := NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	// The modulus is coprime to the index channel's cycle length, so
	// the corrupted slots rotate across cycles and every table is
	// eventually readable (a modulus dividing the cycle would corrupt
	// the same tables forever — a legitimate wedge no client survives).
	src := &faultSource{PacketSource: mt, mutate: func(ch int, abs int64, p Packet) (Packet, bool) {
		if p.Flags&flagIndex != 0 && abs%7 == 0 && len(p.Payload) > 4 {
			p.Payload = p.Payload[:len(p.Payload)/2]
			return p, true
		}
		return p, false
	}}
	runFaultWindows(t, ds, x, lay, src, 6)
	if src.mutations == 0 {
		t.Fatal("no table packet was truncated; the fault path went unexercised")
	}
}

// TestWireReceiverMislabelledChannelID flips the channel id of table
// entries on a rotating subset of packets. A mislabelled pointer maps
// to a frame in another shard whose HC span cannot contain the entry's
// HC value, so the receiver must reject the table instead of absorbing
// a false frame fact — and the client must converge through retries.
func TestWireReceiverMislabelledChannelID(t *testing.T) {
	ds, x, lay := wireTestBed(t, 240, 433, quarterBounds)
	mt, err := NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	// First table packet carries the own-HC (16B) then entries of
	// 16+3 bytes: the first entry's channel byte sits at offset 32.
	// Modulus coprime to the index cycle, as in the truncation test.
	src := &faultSource{PacketSource: mt, mutate: func(ch int, abs int64, p Packet) (Packet, bool) {
		if p.Flags&flagIndex != 0 && abs%11 == 0 && len(p.Payload) > 33 {
			mutated := append([]byte(nil), p.Payload...)
			mutated[32] ^= 1
			p.Payload = mutated
			return p, true
		}
		return p, false
	}}
	runFaultWindows(t, ds, x, lay, src, 6)
	if src.mutations == 0 {
		t.Fatal("no channel id was mislabelled; the fault path went unexercised")
	}
}

// TestWireReceiverLostDirectoryAcrossSwap corrupts the directory
// payload for a window after the seam: Poll keeps paying for and
// rejecting the broken directory, the client stays on the old version
// (its channels still stream it through the transition), and once the
// directory heals the client re-seeds and completes exactly.
func TestWireReceiverLostDirectoryAcrossSwap(t *testing.T) {
	ds, x, lay0 := wireTestBed(t, 240, 439, quarterBounds)
	lay1, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: skewedBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	side := int(ds.Curve.Side())
	resynced := 0
	for trial := 0; trial < 8; trial++ {
		rb, err := NewRebroadcaster(lay0)
		if err != nil {
			t.Fatal(err)
		}
		probe := rng.Int63n(int64(lay0.ProbeCycle()))
		seam, err := rb.Stage(lay1, probe)
		if err != nil {
			t.Fatal(err)
		}
		healAt := seam + int64(2*lay0.ChanLen(0))
		src := &faultSource{PacketSource: rb, mutateDir: func(abs int64, dir []byte) []byte {
			if dir != nil && abs >= seam && abs < healAt {
				bad := append([]byte(nil), dir...)
				bad[0] ^= 0xff // break the magic: reception "fails"
				return bad
			}
			return dir
		}}
		rx, err := NewWireReceiver(lay0, 1, src, probe, nil)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			t.Fatal(err)
		}
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 55, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: lost-directory run returned %d objects, want %d", trial, len(got), len(want))
		}
		if rx.Version() == 2 {
			resynced++
		}
	}
	if resynced == 0 {
		t.Fatal("no trial survived into the healed directory; the test exercises nothing")
	}
}

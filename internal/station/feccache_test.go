package station

import (
	"reflect"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
)

// cacheBed builds a coded single-channel broadcast and seed-searches a
// loss draw under which the first read of table pos costs a recovery,
// returning the primed receiver, the table position and slot, and the
// recovered content.
func cacheBed(t testing.TB) (rx *FECReceiver, pos, ts int, want []dsi.TableEntry) {
	t.Helper()
	ds := dataset.Uniform(220, 7, 521)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := rsCode()
	tx, err := NewTransmitterFEC(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lay := x.SingleLayout()
	for seed := int64(1); seed < 400; seed++ {
		m := broadcast.GilbertForTheta(0.25, 2, seed)
		m.AffectsData = true
		r, err := NewFECReceiver(lay, 1, tx, cfg, 0, m)
		if err != nil {
			t.Fatal(err)
		}
		for pos = 0; pos < 8 && pos < x.NF; pos++ {
			_, ts = lay.TablePlace(pos)
			r.DozeUntilPos(ts)
			tab, ok := r.Table(pos)
			if ok && r.Recovered() > 0 {
				return r, pos, ts, append([]dsi.TableEntry(nil), tab.Entries...)
			}
		}
	}
	t.Fatal("no seed exercised a table recovery")
	return nil, 0, 0, nil
}

// TestFECTableCacheWarmReread pins the recovered-unit cache's promise:
// after a table read that cost a recovery, re-reading the same table a
// cycle later — across a Reset, on an error-free channel — serves from
// the cache with ZERO extra air slots: the clock, latency, and tuning
// stats do not move, and the content is the recovery's.
func TestFECTableCacheWarmReread(t *testing.T) {
	rx, pos, ts, want := cacheBed(t)

	// New query: re-tune error-free at the current slot. The window is
	// dropped; the cache survives.
	rx.Reset(rx.Now(), nil)
	rx.DozeUntilPos(ts)
	now0 := rx.Now()
	st0 := rx.Stats()
	tab, ok := rx.Table(pos)
	if !ok {
		t.Fatal("warm table re-read failed")
	}
	st1 := rx.Stats()
	if rx.Now() != now0 || st1.TuningPackets != st0.TuningPackets || st1.LatencyPackets != st0.LatencyPackets {
		t.Fatalf("warm re-read cost air slots: clock %d -> %d, tuning %d -> %d, latency %d -> %d",
			now0, rx.Now(), st0.TuningPackets, st1.TuningPackets, st0.LatencyPackets, st1.LatencyPackets)
	}
	if rx.CacheHits() != 1 {
		t.Fatalf("CacheHits = %d, want 1", rx.CacheHits())
	}
	if tab.Pos != pos || !reflect.DeepEqual(tab.Entries, want) {
		t.Fatalf("cached table differs from the recovered one")
	}
}

// TestFECTableCacheDroppedOnFollow checks the cache dies with the
// schedule generation: after Follow the same congruent read must hit
// the air again, not the stale cache.
func TestFECTableCacheDroppedOnFollow(t *testing.T) {
	rx, pos, ts, _ := cacheBed(t)
	rx.Reset(rx.Now(), nil)
	rx.Follow(rx.Layout())
	rx.DozeUntilPos(ts)
	now0 := rx.Now()
	if _, ok := rx.Table(pos); !ok {
		t.Fatal("table read failed on the error-free channel")
	}
	if rx.CacheHits() != 0 {
		t.Fatalf("CacheHits = %d after Follow, want 0", rx.CacheHits())
	}
	if rx.Now() == now0 {
		t.Fatal("read cost no air slots; stale cache served after Follow")
	}
}

// BenchmarkFECTableCacheHit measures the cache's hit path: a warm
// table re-read, start to finish (doze plus decode), with no air
// reception at all.
func BenchmarkFECTableCacheHit(b *testing.B) {
	rx, pos, ts, _ := cacheBed(b)
	rx.Reset(rx.Now(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rx.DozeUntilPos(ts)
		if _, ok := rx.Table(pos); !ok {
			b.Fatal("cache hit failed")
		}
	}
}

// Erasure-coded transmission: the encoder side of in-stream loss
// recovery. A coded broadcast protects each semantic unit a receiver
// reads contiguously — one frame's index table, one data object
// (padding objects included) — with a parity tail appended right after
// the unit in the physical stream. Unit members interleave across the
// code's groups (member i joins group i mod Groups, parity packets
// interleave the same way), so a loss burst shorter than the group
// count lands on distinct groups and each sees at most one erasure.
//
// The physical cycle is therefore the logical cycle with G*R parity
// slots spliced in after every unit. Units tile each channel's logical
// cycle exactly, so physical cycle boundaries coincide with logical
// ones and the Rebroadcaster's seam arithmetic carries over verbatim
// with physical channel lengths — a staged layout re-encodes its
// parity at the seam like any other cycle boundary. With the zero
// FECConfig there are no parity slots, the physical and logical
// domains coincide, and every coded type is packet-for-packet the
// plain transmitter it extends.

package station

import (
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/wire"
)

// FECSource is the optional PacketSource extension of a coded station:
// the versioned FEC descriptor on air at an absolute slot (nil when
// the broadcast is uncoded). The descriptor version mirrors the shard
// directory's, so a receiver adopting a directory bump can check the
// code metadata crossing the seam with it.
type FECSource interface {
	FECDescAt(abs int64) ([]byte, uint32)
}

// fecUnit is one protected unit on one channel.
type fecUnit struct {
	logStart  int // first logical slot of the unit on its channel
	physStart int // first physical slot
	n         int // content packets
	table     bool
	pos       int // cycle position of the owning frame
	obj       int // object index within the frame; -1 for table units
}

// fecChan is the physical geometry of one channel.
type fecChan struct {
	units    []fecUnit
	log2phys []int32 // logical slot -> physical slot
	logOf    []int32 // physical slot -> logical slot (parity maps to the next content slot)
	unitOf   []int32 // physical slot -> unit index
	member   []int32 // physical slot -> member index within the unit; -1 for parity
	physLen  int
}

// fecGeom is the full physical geometry of a coded layout: derived
// from the layout and the code alone, so transmitter and receiver
// compute identical geometries from catalog knowledge.
type fecGeom struct {
	cfg wire.FECConfig
	lay *dsi.Layout
	chs []fecChan
	air *broadcast.Air // physical air the receiver's tuner runs on
}

func (g *fecGeom) code(table bool) wire.FECCode {
	if table {
		return g.cfg.Table
	}
	return g.cfg.Object
}

// newFECGeom derives the physical geometry of a layout under a code.
// Supported layouts are those with per-unit-contiguous channels: the
// classic single channel and the split/sharded multi-channel layouts
// (stripe channels can wrap a unit across the cycle seam, which would
// split its parity tail).
func newFECGeom(lay *dsi.Layout, cfg wire.FECConfig) (*fecGeom, error) {
	x := lay.X
	if err := cfg.Validate(x.TablePackets, x.ObjPackets); err != nil {
		return nil, err
	}
	if lay.Channels() > 1 && lay.Sched != dsi.SchedSplit && lay.Sched != dsi.SchedShard {
		return nil, fmt.Errorf("station: FEC needs per-unit-contiguous channels; %v layouts are unsupported", lay.Sched)
	}
	g := &fecGeom{cfg: cfg, lay: lay, chs: make([]fecChan, lay.Channels())}
	chans := make([]*broadcast.Channel, lay.Channels())
	for ch := range g.chs {
		c := &g.chs[ch]
		logLen := lay.ChanLen(ch)
		prog := lay.Air.Channels[ch].Program
		c.log2phys = make([]int32, logLen)
		var slots []broadcast.Slot

		for s := 0; s < logLen; {
			u := fecUnit{logStart: s, physStart: len(slots)}
			if pos, part, ok := lay.SlotTable(ch, s); ok {
				if part != 0 {
					return nil, fmt.Errorf("station: channel %d slot %d starts mid-table", ch, s)
				}
				u.table, u.pos, u.obj, u.n = true, pos, -1, x.TablePackets
			} else if pos, off, ok := lay.SlotData(ch, s); ok {
				if off%x.ObjPackets != 0 {
					return nil, fmt.Errorf("station: channel %d slot %d starts mid-object", ch, s)
				}
				u.pos, u.obj, u.n = pos, off/x.ObjPackets, x.ObjPackets
			} else {
				return nil, fmt.Errorf("station: channel %d slot %d is neither table nor data", ch, s)
			}
			code := g.code(u.table)
			ui := int32(len(c.units))
			kind := broadcast.KindData
			if u.table {
				kind = broadcast.KindIndex
			}
			for i := 0; i < u.n; i++ {
				c.log2phys[s+i] = int32(len(slots))
				c.logOf = append(c.logOf, int32(s+i))
				c.unitOf = append(c.unitOf, ui)
				c.member = append(c.member, int32(i))
				slots = append(slots, prog.At(s+i))
			}
			nextLog := int32((s + u.n) % logLen)
			for t := 0; t < code.Tail(); t++ {
				// The parity tail interleaves like the members: row j of
				// group g sits at tail offset j*Groups+g, so consecutive
				// slots belong to distinct groups.
				c.logOf = append(c.logOf, nextLog)
				c.unitOf = append(c.unitOf, ui)
				c.member = append(c.member, -1)
				slots = append(slots, broadcast.Slot{Kind: kind, Owner: int32(u.pos), Part: -1})
			}
			c.units = append(c.units, u)
			s += u.n
		}
		c.physLen = len(slots)
		chans[ch] = &broadcast.Channel{Program: broadcast.Program{Capacity: x.Cfg.Capacity, Slots: slots}}
	}
	air, err := broadcast.NewAir(lay.Air.SwitchSlots, chans...)
	if err != nil {
		return nil, err
	}
	g.air = air
	return g, nil
}

// unitAt returns the unit containing a logical slot of a channel.
func (g *fecGeom) unitAt(ch, logSlot int) *fecUnit {
	c := &g.chs[ch]
	return &c.units[c.unitOf[c.log2phys[logSlot]]]
}

// buildParity precomputes every parity packet payload of one channel,
// indexed by physical slot (nil for content slots). logical serves the
// channel's logical packets.
func buildParity(c *fecChan, cfg wire.FECConfig, capacity int, logical func(log int) Packet) [][]byte {
	out := make([][]byte, c.physLen)
	for _, u := range c.units {
		code := cfg.Table
		if !u.table {
			code = cfg.Object
		}
		if !code.Enabled() {
			continue
		}
		// Member symbols: payloads zero-padded to capacity. Short and
		// absent payloads (table tails, padding objects) pad to all-zero
		// symbols, which the receiver reproduces from catalog geometry.
		syms := make([][]byte, u.n)
		for i := range syms {
			sym := make([]byte, capacity)
			copy(sym, logical(u.logStart+i).Payload)
			syms[i] = sym
		}
		for grp := 0; grp < code.Groups; grp++ {
			members, k := code.GroupMembers(u.n, grp)
			data := make([][]byte, 0, k)
			for i := grp; i < u.n; i += code.Groups {
				data = append(data, syms[i])
			}
			for j, sym := range wire.RSParity(data, code.Parity) {
				h := wire.ParityHeader{
					Unit:    uint32(u.logStart),
					Group:   uint8(grp),
					K:       uint8(k),
					R:       uint8(code.Parity),
					Index:   uint8(j),
					Members: members,
				}
				out[u.physStart+u.n+j*code.Groups+grp] = wire.EncodeParity(h, sym)
			}
		}
	}
	return out
}

// NewTransmitterFEC is NewTransmitter with an erasure code: the
// single-channel stream gains a parity tail after every index table
// and every object. Packet, Cycle and PacketAt then run in the
// physical slot domain. The zero config is the plain transmitter.
func NewTransmitterFEC(x *dsi.Index, cfg wire.FECConfig) (*Transmitter, error) {
	t, err := NewTransmitter(x)
	if err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return t, nil
	}
	g, err := newFECGeom(x.SingleLayout(), cfg)
	if err != nil {
		return nil, err
	}
	t.fec = g
	t.parity = buildParity(&g.chs[0], cfg, x.Cfg.Capacity, t.logicalPacket)
	t.fecDesc, err = wire.EncodeFECDesc(cfg, 1)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// NewMultiTransmitterFEC is NewMultiTransmitter with an erasure code
// over every channel of the layout. The zero config is the plain
// multi-channel transmitter.
func NewMultiTransmitterFEC(lay *dsi.Layout, cfg wire.FECConfig) (*MultiTransmitter, error) {
	t, err := NewMultiTransmitter(lay)
	if err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return t, nil
	}
	g, err := newFECGeom(lay, cfg)
	if err != nil {
		return nil, err
	}
	t.fec = g
	t.parity = make([][][]byte, lay.Channels())
	for ch := range t.parity {
		ch := ch
		t.parity[ch] = buildParity(&g.chs[ch], cfg, lay.X.Cfg.Capacity,
			func(log int) Packet { return t.logicalPacket(ch, log) })
	}
	t.fecDesc, err = wire.EncodeFECDesc(cfg, 1)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Multi-channel transmission: the station side of the channel
// abstraction layer. A MultiTransmitter materializes one byte stream
// per channel of a dsi.Layout — index tables in the multi-channel wire
// format (whose pointers carry channel ids), object payloads on their
// data channels — and ScanMulti proves the streams are self-describing
// by rebuilding the complete broadcast metadata from one cycle of every
// channel.

package station

import (
	"fmt"
	"sync"

	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/wire"
)

// slotRef describes what one per-channel slot carries.
type slotRef struct {
	pos  int  // cycle position of the owning frame
	obj  int  // object index within the frame (data slots)
	part int  // packet index within the table or object
	data bool // data packet (as opposed to index table packet)
}

// MultiTransmitter materializes the per-channel byte streams of a
// multi-channel DSI broadcast.
type MultiTransmitter struct {
	Lay    *dsi.Layout
	tables [][]byte    // per cycle position, multi-channel wire format
	plan   [][]slotRef // per channel, per slot

	// Cached DirectoryAt encoding (version 1, anchored at slot 0).
	dirOnce sync.Once
	dir     []byte

	// Erasure code (NewMultiTransmitterFEC); nil when uncoded.
	fec     *fecGeom
	parity  [][][]byte // per channel, per physical slot; nil for content
	fecDesc []byte

	// met, when set, counts per-channel packets served via PacketAt.
	met *obs.StationMetrics
}

// SetObs installs the station metric bundle (nil counts nothing).
func (t *MultiTransmitter) SetObs(m *obs.StationMetrics) { t.met = m }

// NewMultiTransmitter prepares the table encodings and the per-channel
// slot plans for the layout.
func NewMultiTransmitter(lay *dsi.Layout) (*MultiTransmitter, error) {
	tables, err := wire.EncodeLayoutTables(lay)
	if err != nil {
		return nil, err
	}
	x := lay.X
	plan := make([][]slotRef, lay.Channels())
	for ch := range plan {
		plan[ch] = make([]slotRef, lay.ChanLen(ch))
	}
	for pos := 0; pos < x.NF; pos++ {
		tc, ts := lay.TablePlace(pos)
		for p := 0; p < x.TablePackets; p++ {
			// Phase-staggered stripe channels may wrap a frame across
			// the cycle seam, so slot indices are reduced modulo the
			// channel length.
			plan[tc][(ts+p)%len(plan[tc])] = slotRef{pos: pos, part: p}
		}
		dc, dsl := lay.DataPlace(pos)
		_, num := x.FrameObjects(x.PosToFrame(pos))
		for o := 0; o < x.NO; o++ {
			for p := 0; p < x.ObjPackets; p++ {
				ref := slotRef{pos: pos, obj: o, part: p, data: true}
				if o >= num {
					ref.obj = -1 // padding slot of a partial last frame
				}
				plan[dc][(dsl+o*x.ObjPackets+p)%len(plan[dc])] = ref
			}
		}
	}
	return &MultiTransmitter{Lay: lay, tables: tables, plan: plan}, nil
}

// Directory returns the encoded on-air channel directory of the
// transmitter's layout (split and sharded layouts): the shard/cycle
// catalog a station broadcasts alongside the streams so receivers can
// interpret multi-channel pointers into unequal cycles. ScanMultiDir
// consumes it on the receiver side.
func (t *MultiTransmitter) Directory() ([]byte, error) { return wire.EncodeShardDir(t.Lay) }

// Packet returns the packet broadcast at the given per-channel cycle
// slot of channel ch. On a coded transmitter the slot is physical and
// parity slots carry their encoded parity frames.
func (t *MultiTransmitter) Packet(ch, slot int) Packet {
	if t.fec == nil {
		return t.logicalPacket(ch, slot)
	}
	c := &t.fec.chs[ch]
	slot %= c.physLen
	if par := t.parity[ch][slot]; par != nil {
		return Packet{Ch: uint8(ch), Slot: uint32(slot), Flags: flagParity, Payload: par}
	}
	p := t.logicalPacket(ch, int(c.logOf[slot]))
	p.Slot = uint32(slot)
	return p
}

// ChanSlots returns channel ch's cycle length in packet slots —
// physical slots on a coded transmitter.
func (t *MultiTransmitter) ChanSlots(ch int) int {
	if t.fec != nil {
		return t.fec.chs[ch].physLen
	}
	return len(t.plan[ch])
}

func (t *MultiTransmitter) logicalPacket(ch, slot int) Packet {
	x := t.Lay.X
	slot %= len(t.plan[ch])
	ref := t.plan[ch][slot]
	p := Packet{Ch: uint8(ch), Slot: uint32(slot)}

	if !ref.data {
		p.Flags = flagIndex
		tab := t.tables[ref.pos]
		from := ref.part * x.Cfg.Capacity
		if from < len(tab) {
			to := min(from+x.Cfg.Capacity, len(tab))
			p.Payload = tab[from:to]
		}
		return p
	}
	if ref.obj < 0 {
		return p // padding slot of a partial last frame
	}
	first, _ := x.FrameObjects(x.PosToFrame(ref.pos))
	obj := x.DS.Objects[first+ref.obj]
	payload := objectBytes(wire.ObjectHeader{X: obj.P.X, Y: obj.P.Y, HC: obj.HC},
		obj.ID, x.Cfg.ObjectBytes)
	from := ref.part * x.Cfg.Capacity
	to := min(from+x.Cfg.Capacity, len(payload))
	if ref.part == 0 {
		p.Flags = flagObjectStart
	}
	if from < len(payload) {
		p.Payload = payload[from:to]
	}
	return p
}

// CycleChannel streams one full cycle of channel ch and closes out.
func (t *MultiTransmitter) CycleChannel(ch int, out chan<- Packet) {
	for slot := 0; slot < t.ChanSlots(ch); slot++ {
		out <- t.Packet(ch, slot)
	}
	close(out)
}

// MultiFrameInfo is what ScanMulti reconstructs per cycle position.
type MultiFrameInfo struct {
	Pos     int
	MinHC   uint64
	Entries []wire.MCEntry      // decoded table pointers
	Headers []wire.ObjectHeader // object headers from the data channel
}

// ScanMulti consumes one cycle of every channel (streams[ch] carries
// channel ch, which must match the layout's channel count) and
// reconstructs the broadcast metadata: every multi-channel index table
// (validated against the catalog geometry, channel ids included) and
// every object header. It fails on any inconsistency between the
// streams and the layout a receiver would know a priori.
func ScanMulti(lay *dsi.Layout, streams []<-chan Packet) ([]MultiFrameInfo, error) {
	framesOn := make([]int, lay.Channels())
	for ch := range framesOn {
		framesOn[ch] = lay.FramesOn(ch)
	}
	return scanMulti(lay, framesOn, streams)
}

// ScanMultiDir is ScanMulti for a receiver that takes the per-channel
// geometry from the broadcast's own channel directory rather than from
// a-priori layout knowledge: the directory is decoded, cross-checked
// against the layout geometry the slot inversions use, and its frame
// counts validate every table pointer. A directory that contradicts
// the streams' actual geometry is rejected.
func ScanMultiDir(lay *dsi.Layout, dir []byte, streams []<-chan Packet) ([]MultiFrameInfo, error) {
	entries, err := wire.DecodeShardDir(dir)
	if err != nil {
		return nil, err
	}
	if len(entries) != lay.Channels() {
		return nil, fmt.Errorf("station: directory describes %d channels, air has %d",
			len(entries), lay.Channels())
	}
	for ch, e := range entries {
		if int(e.CycleSlots) != lay.ChanLen(ch) || int(e.Frames) != lay.FramesOn(ch) {
			return nil, fmt.Errorf("station: directory channel %d geometry (%d frames, %d slots) contradicts the air (%d, %d)",
				ch, e.Frames, e.CycleSlots, lay.FramesOn(ch), lay.ChanLen(ch))
		}
	}
	return scanMulti(lay, wire.FramesOnDir(entries), streams)
}

func scanMulti(lay *dsi.Layout, framesOn []int, streams []<-chan Packet) ([]MultiFrameInfo, error) {
	if len(streams) != lay.Channels() {
		return nil, fmt.Errorf("station: %d streams for %d channels", len(streams), lay.Channels())
	}
	x := lay.X
	frames := make([]MultiFrameInfo, x.NF)
	for pos := range frames {
		frames[pos].Pos = pos
	}

	// Order-independent table assembly: table parts are placed by slot
	// inversion rather than read sequentially, because phase-staggered
	// stripe channels can wrap a frame — table included — across the
	// cycle seam, and shard channels of unequal cycles interleave
	// arbitrarily with the index channel.
	tabSize := wire.MCTableSize(x.E)
	tabBuf := make([]byte, x.NF*tabSize)
	tabParts := make([]int, x.NF)

	for ch, in := range streams {
		expect := 0
		for p := range in {
			if int(p.Ch) != ch {
				return nil, fmt.Errorf("station: packet for channel %d on channel %d's stream", p.Ch, ch)
			}
			if int(p.Slot) != expect {
				return nil, fmt.Errorf("station: channel %d: slot %d arrived, want %d", ch, p.Slot, expect)
			}
			expect++
			if len(p.Payload) > x.Cfg.Capacity {
				return nil, fmt.Errorf("station: channel %d slot %d: payload %dB exceeds capacity",
					ch, p.Slot, len(p.Payload))
			}

			switch {
			case p.Flags&flagIndex != 0:
				pos, part, ok := lay.SlotTable(ch, int(p.Slot))
				if !ok {
					return nil, fmt.Errorf("station: channel %d slot %d: unexpected table packet", ch, p.Slot)
				}
				exp := tabSize - part*x.Cfg.Capacity
				if exp < 0 {
					exp = 0
				}
				if exp > x.Cfg.Capacity {
					exp = x.Cfg.Capacity
				}
				if len(p.Payload) != exp {
					return nil, fmt.Errorf("station: position %d: table part %d truncated to %dB, want %dB",
						pos, part, len(p.Payload), exp)
				}
				copy(tabBuf[pos*tabSize+part*x.Cfg.Capacity:], p.Payload)
				tabParts[pos]++
				if tabParts[pos] == x.TablePackets {
					own, entries, err := wire.DecodeTableMC(tabBuf[pos*tabSize:(pos+1)*tabSize], framesOn)
					if err != nil {
						return nil, fmt.Errorf("station: position %d: %w", pos, err)
					}
					frames[pos].MinHC = own
					frames[pos].Entries = entries
				}
			case p.Flags&flagObjectStart != 0:
				pos, _, ok := lay.SlotData(ch, int(p.Slot))
				if !ok {
					return nil, fmt.Errorf("station: channel %d slot %d: object start outside data slots", ch, p.Slot)
				}
				h, err := wire.DecodeHeader(p.Payload)
				if err != nil {
					return nil, fmt.Errorf("station: channel %d slot %d: %w", ch, p.Slot, err)
				}
				frames[pos].Headers = append(frames[pos].Headers, h)
			}
		}
		if expect != lay.ChanLen(ch) {
			return nil, fmt.Errorf("station: channel %d: scanned %d slots, want %d", ch, expect, lay.ChanLen(ch))
		}
	}
	return frames, nil
}

// Exported view of the coded physical geometry. A coded broadcast's
// transmitter and receiver both derive the parity-bearing slot layout
// from catalog knowledge (newFECGeom); external replay engines that
// model a coded client's clock without running a byte-level receiver
// need the same two slot maps per channel. CodedGeometry hands them
// out read-only.

package station

import (
	"dsi/internal/dsi"
	"dsi/internal/wire"
)

// CodedChannel is the physical slot geometry of one channel of an
// erasure-coded broadcast: the cycle length including parity tails and
// the two maps between the logical (content-only) and physical
// (parity-bearing) slot domains. The slices alias the receiver-side
// geometry tables and must not be modified.
type CodedChannel struct {
	// PhysLen is the physical slots per cycle: the logical channel
	// length plus every unit's parity tail.
	PhysLen int
	// Log2Phys maps a logical slot to the physical slot carrying it.
	Log2Phys []int32
	// LogOf maps a physical slot to its logical slot; parity slots map
	// forward to the next content slot, exactly as a coded receiver's
	// Pos reports them.
	LogOf []int32
}

// CodedGeometry derives the per-channel physical geometry of a layout
// under a code — the same derivation every coded transmitter and
// receiver performs, subject to the same layout constraints
// (per-unit-contiguous channels: single, split, sharded).
func CodedGeometry(lay *dsi.Layout, cfg wire.FECConfig) ([]CodedChannel, error) {
	g, err := newFECGeom(lay, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]CodedChannel, len(g.chs))
	for ch := range g.chs {
		c := &g.chs[ch]
		out[ch] = CodedChannel{PhysLen: c.physLen, Log2Phys: c.log2phys, LogOf: c.logOf}
	}
	return out, nil
}

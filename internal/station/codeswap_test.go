package station

import (
	"math/rand"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/spatial"
	"dsi/internal/wire"
)

// TestFECReceiverCodeSwapAcrossSeam stages a swap that changes the FEC
// code along with the directory — an adaptive station retuning its
// rate. The coded receiver must re-adopt the new geometry from the
// descriptor (this used to panic), keep answering windows correctly on
// both sides of the seam, and count exactly one code swap per crossing.
func TestFECReceiverCodeSwapAcrossSeam(t *testing.T) {
	ds, x, lay0 := wireTestBed(t, 260, 617, quarterBounds)
	lay1, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: skewedBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}
	side := int(ds.Curve.Side())

	for _, tc := range []struct {
		name     string
		from, to wire.FECConfig
	}{
		{"xor-to-rs", xorCode(), rsCode()},
		{"rs-to-xor", rsCode(), xorCode()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(12))
			swapped := 0
			for trial := 0; trial < 10; trial++ {
				rb, err := NewRebroadcasterFEC(lay0, tc.from)
				if err != nil {
					t.Fatal(err)
				}
				probe := rng.Int63n(int64(2 * lay0.ProbeCycle()))
				if _, err := rb.StageFEC(lay1, tc.to, probe); err != nil {
					t.Fatal(err)
				}
				var loss *broadcast.LossModel
				if trial%2 == 1 {
					loss = broadcast.GilbertForTheta(0.25, 3, rng.Int63())
					loss.AffectsData = true
				}
				rx, err := NewFECReceiver(lay0, 1, rb, tc.from, probe, loss)
				if err != nil {
					t.Fatal(err)
				}
				reg := obs.NewRegistry()
				rx.SetObs(obs.NewFECMetrics(reg))
				sess, err := dsi.Open(x, dsi.WithReceiver(rx))
				if err != nil {
					t.Fatal(err)
				}
				w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 50, ds.Curve.Side())
				got, _ := sess.Window(w)
				want := ds.WindowBrute(w)
				if !equalIDs(got, want) {
					t.Fatalf("trial %d: window across code swap returned %d objects, want %d",
						trial, len(got), len(want))
				}
				swaps := reg.Sum("station_fec_code_swaps_total")
				if rx.Version() == 2 {
					swapped++
					if rx.cfg != tc.to {
						t.Fatalf("trial %d: resynced receiver still on old code %+v", trial, rx.cfg)
					}
					if swaps != 1 {
						t.Fatalf("trial %d: code swap counter = %v, want 1", trial, swaps)
					}
					// A post-seam query must run entirely on the new code.
					w2 := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 40, ds.Curve.Side())
					got2, _ := sess.Window(w2)
					if !equalIDs(got2, ds.WindowBrute(w2)) {
						t.Fatalf("trial %d: post-swap window wrong on adopted code", trial)
					}
				} else if swaps != 0 {
					t.Fatalf("trial %d: counted %v code swaps without crossing the seam", trial, swaps)
				}
			}
			if swapped == 0 {
				t.Fatal("no trial crossed the seam; the test exercises nothing")
			}
		})
	}
}

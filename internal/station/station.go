// Package station prototypes the transmitter side of a location-based
// wireless broadcast system — the paper's stated future work
// (section 6). Where the simulator accounts packet costs symbolically,
// the station materializes the actual byte stream: every packet of the
// DSI broadcast cycle with its index-table or object payload encoded by
// internal/wire, framed with the position header clients use to
// synchronize.
//
// The package also provides the receiving side needed to prove the
// stream is self-describing: Scan rebuilds the complete broadcast
// metadata (frame boundaries, minimum HC values, object headers) from
// one cycle of raw packets alone, which is the property all of DSI's
// client algorithms rest on.
package station

import (
	"encoding/binary"
	"fmt"

	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/wire"
)

// Every packet on air is framed with its cycle slot and flags: how a
// client that tunes in mid-cycle knows where it is. The simulator's
// capacity figures address payload only (the paper likewise treats
// capacity as usable payload), so the framing is carried in addition to
// Capacity bytes.
const (
	flagIndex byte = 1 << iota
	flagObjectStart
	flagParity
)

// The flag values, exported for byte-exact packet producers outside
// the package — the diskstore image pipeline synthesizes the same
// framing a Transmitter emits.
const (
	FlagIndex       = flagIndex
	FlagObjectStart = flagObjectStart
	FlagParity      = flagParity
)

// Packet is one on-air packet: framing plus payload. Ch identifies the
// broadcast channel on multi-channel airs; the classic single-channel
// transmitter always emits channel 0, and Scan rejects anything else.
type Packet struct {
	Ch      uint8  // broadcast channel
	Slot    uint32 // per-channel cycle slot
	Flags   byte
	Payload []byte // at most Capacity bytes
}

// Transmitter materializes the byte stream of a DSI broadcast. A
// transmitter built by NewTransmitterFEC additionally interleaves
// parity packets and runs in the physical slot domain (see fec.go).
type Transmitter struct {
	x      *dsi.Index
	tables [][]byte

	fec     *fecGeom
	parity  [][]byte // per physical slot; nil for content slots
	fecDesc []byte

	// met, when set, counts packets served via PacketAt.
	met *obs.StationMetrics
}

// SetObs installs the station metric bundle (nil counts nothing).
func (t *Transmitter) SetObs(m *obs.StationMetrics) { t.met = m }

// NewTransmitter prepares the per-frame table encodings.
func NewTransmitter(x *dsi.Index) (*Transmitter, error) {
	tables, err := wire.EncodeFrameTables(x)
	if err != nil {
		return nil, err
	}
	return &Transmitter{x: x, tables: tables}, nil
}

// Packet returns the packet broadcast at the given cycle slot. Object
// payloads are the wire header followed by deterministic filler (a real
// deployment would carry the application payload). On a coded
// transmitter the slot is physical and parity slots carry their
// encoded parity frames.
func (t *Transmitter) Packet(slot int) Packet {
	if t.fec == nil {
		return t.logicalPacket(slot)
	}
	c := &t.fec.chs[0]
	slot %= c.physLen
	if par := t.parity[slot]; par != nil {
		return Packet{Slot: uint32(slot), Flags: flagParity, Payload: par}
	}
	p := t.logicalPacket(int(c.logOf[slot]))
	p.Slot = uint32(slot)
	return p
}

// Capacity returns the transmitter's packet capacity in bytes.
func (t *Transmitter) Capacity() int { return t.x.Cfg.Capacity }

// CycleSlots returns the broadcast cycle length in packet slots —
// physical slots on a coded transmitter.
func (t *Transmitter) CycleSlots() int {
	if t.fec != nil {
		return t.fec.chs[0].physLen
	}
	return t.x.Prog.Len()
}

func (t *Transmitter) logicalPacket(slot int) Packet {
	x := t.x
	slot %= x.Prog.Len()
	pos := slot / x.FramePackets
	within := slot % x.FramePackets
	p := Packet{Slot: uint32(slot)}

	if within < x.TablePackets {
		p.Flags = flagIndex
		tab := t.tables[pos]
		from := within * x.Cfg.Capacity
		if from < len(tab) {
			to := from + x.Cfg.Capacity
			if to > len(tab) {
				to = len(tab)
			}
			p.Payload = tab[from:to]
		}
		return p
	}

	o := (within - x.TablePackets) / x.ObjPackets
	part := (within - x.TablePackets) % x.ObjPackets
	first, num := x.FrameObjects(x.PosToFrame(pos))
	if o >= num {
		return p // padding slot of a partial last frame
	}
	obj := x.DS.Objects[first+o]
	payload := objectBytes(wire.ObjectHeader{X: obj.P.X, Y: obj.P.Y, HC: obj.HC},
		obj.ID, x.Cfg.ObjectBytes)
	from := part * x.Cfg.Capacity
	to := from + x.Cfg.Capacity
	if to > len(payload) {
		to = len(payload)
	}
	if part == 0 {
		p.Flags = flagObjectStart
	}
	if from < len(payload) {
		p.Payload = payload[from:to]
	}
	return p
}

// Cycle streams one full broadcast cycle into the channel and closes it.
func (t *Transmitter) Cycle(out chan<- Packet) {
	for slot := 0; slot < t.CycleSlots(); slot++ {
		out <- t.Packet(slot)
	}
	close(out)
}

// ObjectPayload builds the on-air payload of one data object exactly
// as every transmitter does: wire header + deterministic filler
// derived from the object ID, padded to size. Exported so the
// diskstore image pipeline reproduces the byte stream without a
// transmitter.
func ObjectPayload(h wire.ObjectHeader, id, size int) []byte {
	return objectBytes(h, id, size)
}

// objectBytes builds an object payload: wire header + deterministic
// filler derived from the object ID, padded to size.
func objectBytes(h wire.ObjectHeader, id, size int) []byte {
	buf := make([]byte, size)
	copy(buf, wire.EncodeHeader(h))
	for at := wire.HeaderSize; at+8 <= size; at += 8 {
		binary.BigEndian.PutUint64(buf[at:], uint64(id)*0x9e3779b97f4a7c15+uint64(at))
	}
	return buf
}

// FrameInfo is what Scan reconstructs per frame from the raw stream.
type FrameInfo struct {
	Pos     int
	MinHC   uint64
	Headers []wire.ObjectHeader
}

// Scan consumes one cycle of packets and reconstructs the broadcast
// metadata: per-position index tables (validated) and every object
// header. It fails on any inconsistency between the stream and the
// catalog geometry (capacity, frame packets) — the checks a receiver
// would apply.
func Scan(x *dsi.Index, in <-chan Packet) ([]FrameInfo, error) {
	frames := make([]FrameInfo, 0, x.NF)
	var cur *FrameInfo
	var tableBuf []byte
	expect := 0

	for p := range in {
		if p.Ch != 0 {
			return nil, fmt.Errorf("station: packet on channel %d in a single-channel scan", p.Ch)
		}
		if int(p.Slot) != expect {
			return nil, fmt.Errorf("station: slot %d arrived, want %d", p.Slot, expect)
		}
		expect++
		if len(p.Payload) > x.Cfg.Capacity {
			return nil, fmt.Errorf("station: slot %d payload %dB exceeds capacity", p.Slot, len(p.Payload))
		}
		slot := int(p.Slot)
		pos := slot / x.FramePackets
		within := slot % x.FramePackets

		if within == 0 {
			frames = append(frames, FrameInfo{Pos: pos})
			cur = &frames[len(frames)-1]
			tableBuf = tableBuf[:0]
		}
		switch {
		case within < x.TablePackets:
			if p.Flags&flagIndex == 0 {
				return nil, fmt.Errorf("station: slot %d: table packet not flagged", p.Slot)
			}
			tableBuf = append(tableBuf, p.Payload...)
			if within == x.TablePackets-1 {
				if want := x.TableBytes(); len(tableBuf) < want {
					return nil, fmt.Errorf("station: position %d: table truncated to %dB, want %dB",
						pos, len(tableBuf), want)
				}
				tab, err := wire.DecodeTable(tableBuf[:x.TableBytes()], pos, x.NF)
				if err != nil {
					return nil, fmt.Errorf("station: position %d: %w", pos, err)
				}
				cur.MinHC = tab.OwnHC
			}
		case p.Flags&flagObjectStart != 0:
			h, err := wire.DecodeHeader(p.Payload)
			if err != nil {
				return nil, fmt.Errorf("station: slot %d: %w", p.Slot, err)
			}
			cur.Headers = append(cur.Headers, h)
		}
	}
	if len(frames) != x.NF {
		return nil, fmt.Errorf("station: scanned %d frames, want %d", len(frames), x.NF)
	}
	return frames, nil
}

// Lossy link: the paper's section-5 resilience story. The same kNN
// query runs over DSI and the HCI tree baseline while the link-error
// ratio theta rises from 0 to 0.7. DSI resumes from the next frame's
// index table when a packet is lost, so its costs deteriorate only
// mildly; the tree index must wait for the next occurrence of a lost
// node, so it deteriorates much faster. Results remain correct in every
// case — the loss model changes only the cost.
package main

import (
	"fmt"
	"math/rand"

	"dsi/internal/air"
	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
)

func main() {
	ds := dataset.Uniform(2000, 8, 123)
	const capacity = 64

	dsiIdx, err := dsi.Build(ds, dsi.Config{Capacity: capacity, Segments: 2})
	if err != nil {
		panic(err)
	}
	hci, err := air.NewHCIBroadcast(ds, capacity, broadcast.ObjectBytes)
	if err != nil {
		panic(err)
	}

	q := spatial.Point{X: 200, Y: 40}
	const k = 5
	want, _ := ds.KNNBrute(q, k)
	fmt.Printf("%dNN at %v (true answer: %d objects)\n\n", k, q, len(want))
	fmt.Printf("%-6s %-6s %14s %14s %12s %12s\n",
		"theta", "index", "latency(B)", "tuning(B)", "lat +%", "tun +%")

	const trials = 30
	avg := func(theta float64, knn func(probe int64, loss *broadcast.LossModel) broadcast.Stats, cycle int) (lat, tun float64) {
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < trials; i++ {
			probe := rng.Int63n(int64(cycle))
			var loss *broadcast.LossModel
			seed := rng.Int63()
			if theta > 0 {
				loss = broadcast.NewLossModel(theta, seed)
			}
			st := knn(probe, loss)
			lat += float64(st.LatencyBytes())
			tun += float64(st.TuningBytes())
		}
		return lat / trials, tun / trials
	}

	sess, err := dsi.Open(dsiIdx)
	if err != nil {
		panic(err)
	}
	dsiKNN := func(probe int64, loss *broadcast.LossModel) broadcast.Stats {
		sess.Tune(probe, loss)
		ids, st := sess.KNN(q, k, dsi.Conservative)
		mustMatch(ids, want)
		return st
	}
	hciKNN := func(probe int64, loss *broadcast.LossModel) broadcast.Stats {
		ids, st := hci.KNN(q, k, probe, loss)
		mustMatch(ids, want)
		return st
	}

	baseDSILat, baseDSITun := avg(0, dsiKNN, dsiIdx.Prog.Len())
	baseHCILat, baseHCITun := avg(0, hciKNN, hci.Lay.Prog.Len())
	pct := func(now, was float64) string { return fmt.Sprintf("%+.1f%%", (now-was)/was*100) }
	for _, theta := range []float64{0, 0.2, 0.5, 0.7} {
		dl, dt := avg(theta, dsiKNN, dsiIdx.Prog.Len())
		hl, ht := avg(theta, hciKNN, hci.Lay.Prog.Len())
		fmt.Printf("%-6.1f %-6s %14.0f %14.0f %12s %12s\n",
			theta, "DSI", dl, dt, pct(dl, baseDSILat), pct(dt, baseDSITun))
		fmt.Printf("%-6s %-6s %14.0f %14.0f %12s %12s\n",
			"", "HCI", hl, ht, pct(hl, baseHCILat), pct(ht, baseHCITun))
	}
}

// mustMatch panics unless both answers contain the same objects (the
// example's queries have no distance ties).
func mustMatch(got, want []int) {
	if len(got) != len(want) {
		panic("wrong answer size under loss")
	}
	seen := make(map[int]bool, len(want))
	for _, id := range want {
		seen[id] = true
	}
	for _, id := range got {
		if !seen[id] {
			panic("wrong answer under loss")
		}
	}
}

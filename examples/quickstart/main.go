// Quickstart: build a DSI broadcast over a small spatial dataset, tune
// in as a mobile client, and run the two classic location-based queries
// (a window query and a kNN query), printing results and the two cost
// metrics the paper evaluates: access latency and tuning time.
package main

import (
	"fmt"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
)

func main() {
	// 1000 points of interest on a 128x128 Hilbert grid.
	ds := dataset.Uniform(1000, 7, 42)

	// Build the broadcast: 64-byte packets, the paper's two-segment
	// broadcast reorganization.
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, Segments: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("broadcast:", x)

	// One session answers any number of queries; Tune re-tunes it
	// between them. A session tunes in somewhere in the middle of the
	// cycle and asks for everything in a 20x20 window.
	w := spatial.Rect{MinX: 30, MinY: 30, MaxX: 49, MaxY: 49}
	sess, err := dsi.Open(x, dsi.WithProbeSlot(int64(x.Prog.Len()/3)))
	if err != nil {
		panic(err)
	}
	ids, st := sess.Window(w)
	fmt.Printf("\nwindow %v -> %d objects\n", w, len(ids))
	for i, id := range ids {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(ids)-5)
			break
		}
		fmt.Printf("  %v\n", ds.ByID(id).P)
	}
	fmt.Printf("cost: latency %d bytes, tuning %d bytes\n", st.LatencyBytes(), st.TuningBytes())

	// The same tune-in position, now asking for the 5 nearest objects.
	q := spatial.Point{X: 64, Y: 64}
	sess.Tune(int64(x.Prog.Len()/3), nil)
	ids, st = sess.KNN(q, 5, dsi.Conservative)
	fmt.Printf("\n5NN at %v:\n", q)
	for _, id := range ids {
		o := ds.ByID(id)
		fmt.Printf("  %v at distance %.2f\n", o.P, o.P.Dist(q))
	}
	fmt.Printf("cost: latency %d bytes, tuning %d bytes\n", st.LatencyBytes(), st.TuningBytes())
}

// Observe: the operational observability walkthrough. A sharded
// four-channel broadcast runs a lossy window workload twice — once
// through a bare receiver, once through the same receiver wrapped in
// obs.InstrumentReceiver — to show the three claims the obs layer
// makes: wrapping changes no outcome, the counters answer "what did
// the broadcast cost" without touching the result path, and one
// sampled client yields a slot-level timeline of everything its
// session did. The full Prometheus text exposition is dumped at the
// end; point -metrics on cmd/dsiload or cmd/dsibench at a scraper to
// get the same families live.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/sched"
	"dsi/internal/spatial"
	"dsi/internal/station"
)

func main() {
	ds := dataset.Uniform(2000, 8, 123)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		panic(err)
	}

	// A skew-aware four-channel plan served by the byte-level station.
	plan, err := sched.Uniform(x, 3)
	if err != nil {
		panic(err)
	}
	lay, err := plan.Layout(2)
	if err != nil {
		panic(err)
	}
	mt, err := station.NewMultiTransmitter(lay)
	if err != nil {
		panic(err)
	}

	reg := obs.NewRegistry()
	mt.SetObs(obs.NewStationMetrics(reg, lay.Channels()))

	mkSession := func(instrument bool) *dsi.Session {
		var rx dsi.Receiver
		wrx, err := station.NewWireReceiver(lay, 1, mt, 0, nil)
		if err != nil {
			panic(err)
		}
		rx = wrx
		if instrument {
			rx = obs.InstrumentReceiver(wrx, obs.NewReceiverMetrics(reg, lay.Channels()))
		}
		sess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			panic(err)
		}
		return sess
	}

	// The same lossy window sweep, bare and instrumented: outcomes are
	// bit-identical (regression-enforced in internal/obs); only the
	// instrumented pass fills the registry.
	side := ds.Curve.Side()
	sweep := func(sess *dsi.Session) (queries, objects int) {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 40; i++ {
			probe := rng.Int63n(int64(lay.ProbeCycle()))
			loss := broadcast.NewLossModel(0.2, rng.Int63())
			sess.Tune(probe, loss)
			w := spatial.ClampedWindow(uint32(rng.Intn(int(side))), uint32(rng.Intn(int(side))), 40, side)
			ids, _ := sess.Window(w)
			queries++
			objects += len(ids)
		}
		return
	}
	bq, bo := sweep(mkSession(false))
	iq, io := sweep(mkSession(true))
	fmt.Printf("bare:         %d windows, %d objects\n", bq, bo)
	fmt.Printf("instrumented: %d windows, %d objects (identical)\n\n", iq, io)

	// The counters answer the operational questions from metrics alone.
	snap := reg.Snapshot()
	fmt.Printf("tune-ins        %6.0f\n", snap["dsi_receiver_tuneins_total"])
	fmt.Printf("channel hops    %6.0f\n", snap["dsi_receiver_switches_total"])
	fmt.Printf("table reads     %6.0f\n", snap["dsi_receiver_table_reads_total"])
	fmt.Printf("doze slots      %6.0f\n", snap["dsi_receiver_doze_slots_total"])
	fmt.Printf("lost packets    %6d   by channel:", reg.Sum("dsi_receiver_losses_total"))
	for ch := 0; ch < lay.Channels(); ch++ {
		fmt.Printf(" %.0f", snap[fmt.Sprintf("dsi_receiver_losses_total{channel=\"%d\"}", ch)])
	}
	fmt.Println()

	// One sampled client's slot-level timeline: arm the decorator with
	// a record, run the query, read back everything the session did.
	irx := obs.InstrumentReceiver(func() dsi.Receiver {
		wrx, err := station.NewWireReceiver(lay, 1, mt, 0, nil)
		if err != nil {
			panic(err)
		}
		return wrx
	}(), obs.NewReceiverMetrics(reg, lay.Channels()))
	sess, err := dsi.Open(x, dsi.WithReceiver(irx))
	if err != nil {
		panic(err)
	}
	rec := &obs.TraceRecord{Client: 42, Kind: "window", Probe: 17}
	irx.Begin(rec)
	sess.Tune(17, broadcast.NewLossModel(0.2, 99))
	w := spatial.ClampedWindow(120, 80, 40, side)
	ids, st := sess.Window(w)
	irx.End()
	fmt.Printf("\ntraced client %d: %d objects, %d B latency, %d slot events:\n",
		rec.Client, len(ids), st.LatencyBytes(), len(rec.Events))
	for i, e := range rec.Events {
		if i == 8 {
			fmt.Printf("  ... %d more\n", len(rec.Events)-i)
			break
		}
		fmt.Printf("  %-8s slot %-6d ch %d ok=%v\n", e.Op, e.Slot, e.Ch, e.OK)
	}

	// The same registry, as Prometheus would scrape it.
	fmt.Println("\n--- /metrics ---")
	if err := reg.WriteText(os.Stdout); err != nil {
		panic(err)
	}
}

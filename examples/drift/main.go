// Online re-planning end to end: a broadcast whose workload hot spot
// migrates mid-run. The transmitter profiles the live queries with
// exponentially decayed counts, re-cuts the shard plan when the live
// schedule drifts too far from the fresh optimum, and swaps the shard
// directory at a cycle seam; the client running at the seam re-syncs
// mid-query — keeping everything it already learned — and later clients
// tune straight into the new directory. A static arm keeps the original
// plan on air for comparison.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/sched"
	"dsi/internal/spatial"
)

const (
	channels  = 4
	queries   = 60  // per workload phase
	theta     = 1.2 // Zipf skew
	ratio     = 1.2 // replan trigger: live cost > ratio * fresh optimum
	checkEach = 5
)

func zipfIndex(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	target := u * cum[len(cum)-1]
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func main() {
	ds := dataset.Uniform(2000, 8, 123)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		panic(err)
	}
	cum := make([]float64, ds.N())
	var total float64
	for i := range cum {
		total += math.Pow(float64(i+1), -theta)
		cum[i] = total
	}
	side := ds.Curve.Side()
	mkWindows := func(seed int64, n, shift int) []spatial.Rect {
		rng := rand.New(rand.NewSource(seed))
		out := make([]spatial.Rect, n)
		for i := range out {
			o := ds.Objects[(zipfIndex(cum, rng.Float64())+shift)%ds.N()]
			out[i] = spatial.ClampedWindow(o.P.X, o.P.Y, 25, side)
		}
		return out
	}

	// Train the initial plan on the pre-drift distribution.
	prof := sched.NewProfile(x)
	for _, w := range mkWindows(1, 4*queries, 0) {
		if rect, ok := ds.Curve.ClampRect(w.MinX, w.MinY, w.MaxX, w.MaxY); ok {
			prof.AddRanges(ds.Curve.AppendRangesFunc(nil, rect.Classify), 1)
		}
	}
	plan, err := sched.Partition(prof, channels-1)
	if err != nil {
		panic(err)
	}
	staticLay, err := plan.Layout(2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("initial %v\n", plan)

	// The live run: pre-drift phase, then the hot spot jumps half the
	// HC rank space. The online loop decides when to swap.
	eval := append(mkWindows(2, queries, 0), mkWindows(3, queries, ds.N()/2)...)
	op := sched.NewOnlineProfiler(x, float64(queries)/2)
	op.Seed(prof, 1)
	var rp sched.Replanner
	snap := sched.NewProfile(x)
	live, liveLay := plan, staticLay
	var pendingLay *dsi.Layout

	prng := rand.New(rand.NewSource(4))
	probes := make([]float64, len(eval))
	for i := range probes {
		probes[i] = prng.Float64()
	}

	run := func(c *dsi.Client, lay *dsi.Layout, i int, w spatial.Rect) int64 {
		c.Reset(int64(probes[i]*float64(lay.ProbeCycle())), nil)
		if pendingLay != nil && lay != pendingLay {
			// The seam falls inside this query: the client tunes in on
			// the old directory and re-syncs when the bump reaches it.
			if err := c.ScheduleResync(pendingLay, c.Stats().ProbeSlot+int64(lay.ChanLen(0))); err != nil {
				panic(err)
			}
		}
		got, st := c.Window(w)
		if len(got) != len(ds.WindowBrute(w)) {
			panic("wrong answer")
		}
		return st.LatencyBytes()
	}

	mustClient := func(lay *dsi.Layout) *dsi.Client {
		// The facade's escape hatch: scheduled re-syncs live on the
		// client underneath the session.
		s, err := dsi.Open(lay.X, dsi.WithLayout(lay))
		if err != nil {
			panic(err)
		}
		return s.Client()
	}
	var replanLat, staticLat [2]int64 // per phase
	cs := mustClient(staticLay)
	for i, w := range eval {
		phase := i / queries
		cr := mustClient(liveLay)
		replanLat[phase] += run(cr, liveLay, i, w)
		if pendingLay != nil {
			liveLay = pendingLay // committed at the seam this query crossed
			pendingLay = nil
		}
		staticLat[phase] += run(cs, staticLay, i, w)

		if rect, ok := ds.Curve.ClampRect(w.MinX, w.MinY, w.MaxX, w.MaxY); ok {
			op.Observe(ds.Curve.AppendRangesFunc(nil, rect.Classify), 1)
		}
		if (i+1)%checkEach == 0 && pendingLay == nil {
			fresh, drift, trig, err := rp.Replan(op.Snapshot(snap), live, ratio)
			if err != nil {
				panic(err)
			}
			if trig {
				lay, err := fresh.Layout(2)
				if err != nil {
					panic(err)
				}
				fmt.Printf("query %3d: drift %.2f > %.2f -> swap to %v\n", i+1, drift, ratio, fresh)
				live, pendingLay = fresh, lay
			}
		}
	}

	fmt.Printf("\n%-22s %14s %14s\n", "phase", "static", "replan")
	for phase, name := range []string{"before drift", "after drift"} {
		fmt.Printf("%-22s %13dB %13dB\n", name,
			staticLat[phase]/queries, replanLat[phase]/queries)
	}
}

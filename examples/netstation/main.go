// Netstation: the network station end to end over real sockets. One
// process plays both roles: a netsrv station serves a 3-channel shard
// broadcast on loopback (ephemeral HTTP and UDP ports), and network
// clients bootstrap the catalog from /v1/meta, verify it by checksum,
// attach over HTTP chunked streaming and UDP unicast, and answer
// window and kNN queries from the live stream — the exact path
// `dsistation` + `dsiquery -net` walk across processes (see
// docs/OPERATIONS.md for the daemon guide). The station-side and
// client-side metric families are dumped at the end.
package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/netrecv"
	"dsi/internal/netsrv"
	"dsi/internal/obs"
	"dsi/internal/spatial"
	"dsi/internal/station"
	"dsi/internal/wire"
)

func main() {
	// --- The station side: exactly what cmd/dsistation assembles. ---
	const (
		nObj  = 500
		order = uint(7)
		seed  = int64(1)
	)
	ds := dataset.Uniform(nObj, order, seed)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, Segments: 1, ReserveMCPtr: true})
	check(err)
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 3, Scheduler: dsi.SchedShard, SwitchSlots: 2,
		ShardBounds: []int{0, x.NF / 2, x.NF},
	})
	check(err)
	src, err := station.NewMultiTransmitter(lay)
	check(err)

	reg := obs.NewRegistry()
	srv, err := netsrv.New(netsrv.Config{
		Source: src, Layout: lay,
		Meta: wire.StationMeta{
			Dataset: wire.StationDataset{
				Kind: "uniform", N: nObj, Order: order, Seed: seed, Sum: ds.Checksum(),
			},
			Capacity: 64, Segments: 1, ReserveMCPtr: true,
			Channels: lay.Channels(), Scheduler: "shard", SwitchSlots: 2,
			ShardBounds: lay.ShardBounds(),
		},
		SlotsPerSec: 8000, CtrlEvery: 128, Registry: reg,
	})
	check(err)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	udpAddr, err := srv.ServeUDP(ctx, "127.0.0.1:0")
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	go func() { _ = srv.Run(ctx) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("station up: %s (udp %s), %d objects over %d-channel shard layout\n\n",
		baseURL, udpAddr, nObj, lay.Channels())

	// --- The client side: bootstrap, attach, query. ---
	// Bootstrap fetches /v1/meta, regenerates the identical dataset
	// and index locally, and proves the derivation by checksum before
	// trusting a single decoded pointer.
	opt := netrecv.Options{Registry: reg}
	cat, err := netrecv.Bootstrap(baseURL, opt)
	check(err)
	fmt.Printf("bootstrap: catalog %q checksum ok, directory v%d\n\n", cat.DS.Name, cat.Version())

	// An HTTP streaming client: 5NN at the grid center.
	hrx, err := netrecv.NewHTTPReceiver(baseURL, cat, opt)
	check(err)
	sess, err := dsi.Open(cat.X, dsi.WithReceiver(hrx))
	check(err)
	sess.Tune(hrx.LiveSlot(), nil)
	q := spatial.Point{X: 64, Y: 64}
	ids, st := sess.KNN(q, 5, dsi.Conservative)
	fmt.Printf("http client, 5NN at %v:\n", q)
	for _, id := range ids {
		o := cat.DS.ByID(id)
		fmt.Printf("  object %3d at %v\n", o.ID, o.P)
	}
	fmt.Printf("  cost: latency %d bytes, tuning %d bytes\n\n", st.LatencyBytes(), st.TuningBytes())
	hrx.Close()

	// A UDP unicast client over the same catalog: a window query. A
	// dropped datagram here would surface as an ordinary slot loss —
	// on loopback there are none, and the FEC/retry machinery never
	// has to wake up.
	urx, err := netrecv.NewUDPReceiver(udpAddr, -1, cat, opt)
	check(err)
	usess, err := dsi.Open(cat.X, dsi.WithReceiver(urx))
	check(err)
	usess.Tune(urx.LiveSlot(), nil)
	w := spatial.Rect{MinX: 40, MinY: 40, MaxX: 90, MaxY: 90}
	wids, wst := usess.Window(w)
	fmt.Printf("udp client, window %v: %d objects\n", w, len(wids))
	fmt.Printf("  cost: latency %d bytes, tuning %d bytes\n", wst.LatencyBytes(), wst.TuningBytes())
	fmt.Printf("  reconnects %d, lost slots %d\n\n", urx.Reconnects(), urx.Feed().LostSlots())
	urx.Close()

	// --- The operational surface both sides share. ---
	fmt.Printf("station emitted %d frames over http, %d over udp (%d control frames all told)\n",
		sumLabel(reg, "station_net_frames_total", "http"),
		sumLabel(reg, "station_net_frames_total", "udp"),
		reg.Sum("station_net_ctrl_frames_total"))
	fmt.Printf("clients received %d frames, declared %d slots lost\n\n",
		reg.Sum("netrecv_frames_total"), reg.Sum("netrecv_lost_slots_total"))
	fmt.Println("--- /metrics (station_net_* and netrecv_* families) ---")
	var buf bytes.Buffer
	check(reg.WriteText(&buf))
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "station_net_") || strings.Contains(line, "netrecv_") {
			fmt.Println(line)
		}
	}
}

// sumLabel folds one transport's series out of the snapshot (Sum folds
// every transport together).
func sumLabel(reg *obs.Registry, name, transport string) int64 {
	var total float64
	for k, v := range reg.Snapshot() {
		if strings.HasPrefix(k, name) && strings.Contains(k, `transport="`+transport+`"`) {
			total += v
		}
	}
	return int64(total)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "netstation:", err)
		os.Exit(1)
	}
}

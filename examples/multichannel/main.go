// Multi-channel broadcast: the channel abstraction layer end to end.
// The same window query workload runs over one DSI broadcast placed on
// 1, 2, 4 and 8 parallel channels with the index/data split scheduler
// (channel 0 carries only index tables; the rest carry object payloads
// in contiguous blocks). Separating index from data shortens the data
// cycle and makes tables recur a frame-length factor faster, so access
// latency improves monotonically with the channel count — at the price
// of channel switches, which the tuner charges in latency and counts.
package main

import (
	"fmt"
	"math/rand"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
)

func main() {
	ds := dataset.Uniform(2000, 8, 123)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, Segments: 2})
	if err != nil {
		panic(err)
	}

	const queries = 60
	rng := rand.New(rand.NewSource(7))
	type query struct {
		w spatial.Rect
		u float64
	}
	qs := make([]query, queries)
	side := ds.Curve.Side()
	for i := range qs {
		qs[i] = query{
			w: spatial.ClampedWindow(uint32(rng.Intn(int(side))), uint32(rng.Intn(int(side))), 25, side),
			u: rng.Float64(),
		}
	}

	fmt.Printf("window queries over %s, split scheduler, switch cost 2 slots\n\n", x)
	fmt.Printf("%-9s %14s %14s %10s\n", "channels", "latency(B)", "tuning(B)", "switches")
	for _, n := range []int{1, 2, 4, 8} {
		sess, err := dsi.Open(x, dsi.WithMultiConfig(dsi.MultiConfig{
			Channels: n, Scheduler: dsi.SchedSplit, SwitchSlots: 2,
		}))
		if err != nil {
			panic(err)
		}
		lay := sess.Layout()
		var lat, tun, sw int64
		for _, q := range qs {
			sess.Tune(int64(q.u*float64(lay.ProbeCycle())), nil)
			got, st := sess.Window(q.w)
			if len(got) != len(ds.WindowBrute(q.w)) {
				panic("wrong answer")
			}
			lat += st.LatencyBytes()
			tun += st.TuningBytes()
			sw += st.Switches
		}
		fmt.Printf("%-9d %14d %14d %10.1f\n",
			n, lat/queries, tun/queries, float64(sw)/queries)
	}
}

// Skew-aware broadcast scheduling end to end: profile a skewed query
// trace, cut the Hilbert-ordered broadcast into per-channel shards with
// the broadcast-disks partitioner, and compare the sharded layout
// against uniform striping at equal aggregate bandwidth.
//
// The workload draws window-query centers Zipf-distributed over the HC
// rank of the objects, so the head of the Hilbert order is hot. The
// sched planner gives those frames their own short-cycle data channels
// (hot shards spin faster); the uniform split baseline broadcasts every
// frame at the same period regardless of demand.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/sched"
	"dsi/internal/spatial"
)

const (
	channels = 4
	queries  = 80
	theta    = 1.0 // Zipf skew of the workload
)

// zipfIndex draws an object rank from cumulative Zipf weights.
func zipfIndex(cum []float64, u float64) int {
	target := u * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func main() {
	ds := dataset.Uniform(2000, 8, 123)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		panic(err)
	}

	cum := make([]float64, ds.N())
	var total float64
	for i := range cum {
		total += math.Pow(float64(i+1), -theta)
		cum[i] = total
	}
	side := ds.Curve.Side()
	mkWindows := func(seed int64, n int) []spatial.Rect {
		rng := rand.New(rand.NewSource(seed))
		out := make([]spatial.Rect, n)
		for i := range out {
			o := ds.Objects[zipfIndex(cum, rng.Float64())]
			out[i] = spatial.ClampedWindow(o.P.X, o.P.Y, 25, side)
		}
		return out
	}

	// 1. Profile a training trace: each query's HC ranges charge the
	// frames that can serve them.
	prof := sched.NewProfile(x)
	for _, w := range mkWindows(1, 4*queries) {
		rect, ok := ds.Curve.ClampRect(w.MinX, w.MinY, w.MaxX, w.MaxY)
		if !ok {
			continue
		}
		prof.AddRanges(ds.Curve.AppendRangesFunc(nil, rect.Classify), 1)
	}

	// 2. Partition into channels-1 shards (one data channel each).
	plan, err := sched.Partition(prof, channels-1)
	if err != nil {
		panic(err)
	}
	lay, err := plan.Layout(2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload Zipf theta=%.1f over %s\n%v\n", theta, x, plan)
	for s := 0; s < plan.Shards(); s++ {
		fmt.Printf("  shard %d: frames [%4d,%4d)  load %5.1f%%  cycle %6d slots\n",
			s, plan.Bounds[s], plan.Bounds[s+1], 100*plan.Load[s], lay.ChanLen(1+s))
	}

	// 3. Replay an evaluation trace over the sharded layout and the
	// uniform split baseline (same channel count, same capacity).
	split, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: channels, Scheduler: dsi.SchedSplit, SwitchSlots: 2})
	if err != nil {
		panic(err)
	}
	eval := mkWindows(2, queries)
	probes := make([]float64, queries)
	prng := rand.New(rand.NewSource(3))
	for i := range probes {
		probes[i] = prng.Float64()
	}
	run := func(lay *dsi.Layout) (lat, tun int64) {
		sess, err := dsi.Open(lay.X, dsi.WithLayout(lay))
		if err != nil {
			panic(err)
		}
		for i, w := range eval {
			sess.Tune(int64(probes[i]*float64(lay.ProbeCycle())), nil)
			got, st := sess.Window(w)
			if len(got) != len(ds.WindowBrute(w)) {
				panic("wrong answer")
			}
			lat += st.LatencyBytes()
			tun += st.TuningBytes()
		}
		return lat / queries, tun / queries
	}
	shardLat, shardTun := run(lay)
	splitLat, splitTun := run(split)

	fmt.Printf("\n%-14s %14s %14s\n", "layout", "latency(B)", "tuning(B)")
	fmt.Printf("%-14s %14d %14d\n", "shard (sched)", shardLat, shardTun)
	fmt.Printf("%-14s %14d %14d\n", "split (even)", splitLat, splitTun)
	fmt.Printf("\nhot-query latency: %.1f%% of uniform striping\n",
		100*float64(shardLat)/float64(splitLat))
}

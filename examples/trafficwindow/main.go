// Traffic conditions: the paper's motivating window-query scenario. A
// broadcast server pushes traffic-sensor readings for a metropolitan
// grid; an in-car client asks for all sensors in the area it is about
// to drive through. The example runs the same window query over all
// three air indexes the paper evaluates — DSI, the STR R-tree, and the
// Hilbert Curve Index — and compares their access latency and tuning
// time.
package main

import (
	"fmt"
	"math/rand"

	"dsi/internal/air"
	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
)

func main() {
	// 2000 traffic sensors spread over a 256x256 cell road grid.
	ds := dataset.Uniform(2000, 8, 99)

	const capacity = 64
	dsiIdx, err := dsi.Build(ds, dsi.Config{Capacity: capacity, Segments: 2})
	if err != nil {
		panic(err)
	}
	rt, err := air.NewRTreeBroadcast(ds, capacity, broadcast.ObjectBytes)
	if err != nil {
		panic(err)
	}
	hci, err := air.NewHCIBroadcast(ds, capacity, broadcast.ObjectBytes)
	if err != nil {
		panic(err)
	}

	// The area ahead: a 40x40 cell window.
	w := spatial.Rect{MinX: 100, MinY: 60, MaxX: 139, MaxY: 99}
	want := ds.WindowBrute(w)
	fmt.Printf("window %v holds %d sensors\n", w, len(want))

	rng := rand.New(rand.NewSource(5))
	const trials = 40
	fmt.Printf("average cost over %d random tune-in positions:\n\n", trials)

	run := func(name string, cycle int, query func(probe int64) (int, broadcast.Stats)) {
		var lat, tun float64
		for i := 0; i < trials; i++ {
			probe := rng.Int63n(int64(cycle))
			n, st := query(probe)
			if n != len(want) {
				panic(fmt.Sprintf("%s returned %d sensors, want %d", name, n, len(want)))
			}
			lat += float64(st.LatencyBytes())
			tun += float64(st.TuningBytes())
		}
		fmt.Printf("  %-8s latency %9.0f bytes   tuning %8.0f bytes\n", name, lat/trials, tun/trials)
	}

	sess, err := dsi.Open(dsiIdx)
	if err != nil {
		panic(err)
	}
	run("DSI", dsiIdx.Prog.Len(), func(probe int64) (int, broadcast.Stats) {
		sess.Tune(probe, nil)
		ids, st := sess.Window(w)
		return len(ids), st
	})
	run("R-tree", rt.Lay.Prog.Len(), func(probe int64) (int, broadcast.Stats) {
		ids, st := rt.Window(w, probe, nil)
		return len(ids), st
	})
	run("HCI", hci.Lay.Prog.Len(), func(probe int64) (int, broadcast.Stats) {
		ids, st := hci.Window(w, probe, nil)
		return len(ids), st
	})
}

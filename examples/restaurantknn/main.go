// Restaurant finder: the paper's motivating kNN scenario. A city's
// restaurants (a clustered dataset — restaurants concentrate downtown)
// are broadcast over the wireless channel; a pedestrian asks for the 3
// nearest ones. The example contrasts the paper's three kNN execution
// options: the conservative and aggressive strategies on the original
// HC-order broadcast, and the conservative strategy on the two-segment
// reorganized broadcast — reproducing the tradeoff of section 3.4-3.5.
package main

import (
	"fmt"
	"math/rand"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
)

func main() {
	// ~800 restaurants clustered around a few districts of a 256x256
	// cell city map.
	ds := dataset.Clustered(dataset.ClusteredConfig{
		N: 800, Order: 8, Clusters: 6, Spread: 0.04, Isolated: 0.1, Seed: 7,
	})

	original, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		panic(err)
	}
	reorganized, err := dsi.Build(ds, dsi.Config{Capacity: 64, Segments: 2})
	if err != nil {
		panic(err)
	}

	user := spatial.Point{X: 150, Y: 90}
	fmt.Printf("user at %v looking for the 3 nearest restaurants\n\n", user)

	// Show the answer once (identical under every strategy).
	c, err := dsi.Open(original)
	if err != nil {
		panic(err)
	}
	ids, _ := c.KNN(user, 3, dsi.Conservative)
	for _, id := range ids {
		o := ds.ByID(id)
		fmt.Printf("  restaurant #%d at %v, %.1f cells away\n", o.ID, o.P, o.P.Dist(user))
	}

	// Average the costs over many tune-in positions: the tradeoff the
	// paper reports (conservative = latency, aggressive = energy,
	// reorganized = both) shows up in the averages.
	type variant struct {
		name  string
		x     *dsi.Index
		strat dsi.Strategy
	}
	variants := []variant{
		{"original + conservative", original, dsi.Conservative},
		{"original + aggressive", original, dsi.Aggressive},
		{"reorganized + conservative", reorganized, dsi.Conservative},
	}
	rng := rand.New(rand.NewSource(1))
	const trials = 50
	fmt.Printf("\naverage cost over %d random tune-in positions:\n", trials)
	for _, v := range variants {
		sess, err := dsi.Open(v.x)
		if err != nil {
			panic(err)
		}
		var lat, tun float64
		for i := 0; i < trials; i++ {
			sess.Tune(rng.Int63n(int64(v.x.Prog.Len())), nil)
			_, st := sess.KNN(user, 3, v.strat)
			lat += float64(st.LatencyBytes())
			tun += float64(st.TuningBytes())
		}
		fmt.Printf("  %-28s latency %7.0f bytes   tuning %6.0f bytes\n",
			v.name, lat/trials, tun/trials)
	}
}

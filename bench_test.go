// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: one benchmark per paper artifact, each
// running the corresponding experiment from internal/experiment and
// reporting the headline metrics (average access latency and tuning
// time in bytes per query) as custom benchmark metrics.
//
// The benchmarks use a reduced query count per data point so that
// `go test -bench=.` finishes in minutes; `cmd/dsibench` runs the same
// experiments at full scale and prints the complete tables.
package bench

import (
	"strconv"
	"testing"

	"dsi/internal/dsi"
	"dsi/internal/experiment"
	"dsi/internal/spatial"
)

// dsiConfig is the configuration the paper evaluates after section 4.1:
// the two-segment reorganized broadcast.
func dsiConfig(capacity int) dsi.Config {
	return dsi.Config{Capacity: capacity, Segments: 2}
}

// shortScale drops params to a smoke-test scale under -short so the
// whole suite finishes in seconds (CI runs it on every push).
func shortScale(p *experiment.Params) {
	if testing.Short() {
		p.N = 1000
		p.Order = 7
	}
}

// benchParams keeps benchmark iterations affordable while staying at
// the paper's dataset scale.
func benchParams() experiment.Params {
	p := experiment.Params{Queries: 5, Verify: true}
	shortScale(&p)
	if testing.Short() {
		p.Queries = 2
	}
	return p
}

// reportFigure publishes the final X point of every series as custom
// metrics, so `go test -bench` output carries the reproduced numbers.
func reportFigure(b *testing.B, f experiment.Figure) {
	for _, s := range f.Series {
		if len(s.Y) == 0 {
			continue
		}
		b.ReportMetric(s.Y[len(s.Y)-1], f.ID+"-"+s.Name+"-B")
	}
}

func runFigureBench(b *testing.B, fn func(experiment.Params) experiment.Result) {
	var res experiment.Result
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Seed = int64(i + 1) // vary the workload across iterations
		res = fn(p)
	}
	for _, f := range res.Figures {
		reportFigure(b, f)
	}
}

// BenchmarkFig8 regenerates Figure 8: broadcast reorganization
// (window and 10NN, original vs reorganized, conservative vs
// aggressive) across packet capacities 32-512.
func BenchmarkFig8(b *testing.B) { runFigureBench(b, experiment.Fig8) }

// BenchmarkFig9 regenerates Figure 9: window queries vs. packet
// capacity for DSI, R-tree and HCI.
func BenchmarkFig9(b *testing.B) { runFigureBench(b, experiment.Fig9) }

// BenchmarkFig10 regenerates Figure 10: window queries vs.
// WinSideRatio.
func BenchmarkFig10(b *testing.B) { runFigureBench(b, experiment.Fig10) }

// BenchmarkFig11 regenerates Figure 11: NN and 10NN queries vs. packet
// capacity.
func BenchmarkFig11(b *testing.B) { runFigureBench(b, experiment.Fig11) }

// BenchmarkFig12 regenerates Figure 12: kNN queries vs. k.
func BenchmarkFig12(b *testing.B) { runFigureBench(b, experiment.Fig12) }

// BenchmarkTable1 regenerates Table 1: performance deterioration under
// link errors (theta in {0.2, 0.5, 0.7}) for all three indexes.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Seed = int64(i + 1)
		experiment.Table1(p)
	}
}

// BenchmarkRealDataset regenerates the REAL-dataset comparisons the
// paper reports in the text of sections 4.2 and 4.3.
func BenchmarkRealDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Seed = int64(i + 1)
		experiment.RealDataset(p)
	}
}

// BenchmarkAblationSizing compares the default auto frame sizing with
// the paper's literal one-packet-table sizing (DESIGN.md item 3).
func BenchmarkAblationSizing(b *testing.B) { runFigureBench(b, experiment.AblationSizing) }

// BenchmarkAblationReorgM sweeps the reorganization factor m.
func BenchmarkAblationReorgM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Seed = int64(i + 1)
		experiment.AblationReorgM(p)
	}
}

// BenchmarkAblationIndexBase sweeps the index base r under the fixed
// full-coverage sizing.
func BenchmarkAblationIndexBase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchParams()
		p.Seed = int64(i + 1)
		experiment.AblationIndexBase(p)
	}
}

// BenchmarkQueryThroughput measures raw simulated queries per second on
// the paper's default configuration, per query type and capacity. The
// allocation metrics are part of the contract: steady-state queries
// must not allocate anything dataset-sized (the session pool recycles
// client knowledge bases across iterations).
func BenchmarkQueryThroughput(b *testing.B) {
	p := experiment.Params{Queries: 1, Verify: false}
	shortScale(&p)
	ds := p.Dataset()
	for _, capacity := range []int{64, 512} {
		sys, err := experiment.NewDSI(ds, dsiConfig(capacity), 0, "")
		if err != nil {
			b.Fatal(err)
		}
		b.Run("window/C="+strconv.Itoa(capacity), func(b *testing.B) {
			b.ReportAllocs()
			wl := &experiment.Workload{DS: ds, Queries: 1, Seed: 1}
			for i := 0; i < b.N; i++ {
				wl.Seed = int64(i)
				wl.RunWindow(sys, experiment.DefaultWinSideRatio)
			}
		})
		b.Run("knn10/C="+strconv.Itoa(capacity), func(b *testing.B) {
			b.ReportAllocs()
			wl := &experiment.Workload{DS: ds, Queries: 1, Seed: 1}
			for i := 0; i < b.N; i++ {
				wl.Seed = int64(i)
				wl.RunKNN(sys, 10)
			}
		})
	}
}

// BenchmarkClientReuse isolates the zero-allocation client engine: the
// same query answered by a freshly constructed client per iteration
// versus one long-lived client Reset between iterations. The reused
// variant must report zero dataset-sized bytes per query.
func BenchmarkClientReuse(b *testing.B) {
	p := experiment.Params{Queries: 1, Verify: false}
	shortScale(&p)
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsiConfig(64))
	if err != nil {
		b.Fatal(err)
	}
	side := ds.Curve.Side()
	w := spatial.ClampedWindow(side/3, side/2, side/10, side)
	q := spatial.Point{X: side / 2, Y: side / 3}
	probe := func(i int) int64 { return int64((i * 7919) % x.Prog.Len()) }

	b.Run("window/fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dsi.NewClient(x, probe(i), nil).Window(w)
		}
	})
	b.Run("window/reused", func(b *testing.B) {
		b.ReportAllocs()
		c := dsi.NewClient(x, 0, nil)
		var buf []int
		for i := 0; i < b.N; i++ {
			c.Reset(probe(i), nil)
			buf, _ = c.WindowAppend(buf[:0], w)
		}
	})
	b.Run("knn10/fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dsi.NewClient(x, probe(i), nil).KNN(q, 10, dsi.Conservative)
		}
	})
	b.Run("knn10/reused", func(b *testing.B) {
		b.ReportAllocs()
		c := dsi.NewClient(x, 0, nil)
		var buf []int
		for i := 0; i < b.N; i++ {
			c.Reset(probe(i), nil)
			buf, _ = c.KNNAppend(buf[:0], q, 10, dsi.Conservative)
		}
	})
}

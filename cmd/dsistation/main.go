// Command dsistation serves a DSI broadcast over real transports: the
// wire byte cycles every receiver decodes stream out as
// position-stamped net frames over HTTP chunked streams (plus an SSE
// variant), UDP unicast subscriptions, and UDP multicast groups (one
// group per broadcast channel). The daemon also serves the catalog
// document (/v1/meta) clients bootstrap from, and the obs /metrics and
// /debug/pprof surfaces.
//
// Usage:
//
//	dsistation                                   # uniform dataset, 4-channel shard, HTTP on :8345
//	dsistation -dataset uniform.csv -order 8     # serve a dsigen CSV
//	dsistation -image u10m.img                   # serve an mmap'd wire-cycle image (dsigen -emit-image)
//	dsistation -udp :8346 -mcast 239.1.9.0:8400  # add the datagram transports
//	dsistation -fec 4,1 -fectable 1,1            # erasure-coded broadcast
//	dsistation -swapdemo 200000                  # stage a live directory re-cut periodically
//
// See docs/OPERATIONS.md for the full running guide.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dsi/internal/dataset"
	"dsi/internal/diskstore"
	"dsi/internal/dsi"
	"dsi/internal/netsrv"
	"dsi/internal/obs"
	"dsi/internal/station"
	"dsi/internal/wire"
)

func main() {
	var (
		httpAddr = flag.String("http", ":8345", "HTTP listen address (/v1/meta, /v1/stream, /v1/sse, /metrics, /debug/pprof)")
		udpAddr  = flag.String("udp", "", "UDP subscribe address (e.g. :8346; empty = datagram transport off)")
		mcast    = flag.String("mcast", "", "multicast base group; channel c emits on port+c (e.g. 239.1.9.0:8400; requires -udp)")
		rate     = flag.Int("rate", 20000, "broadcast pace in slots/sec (<= 0 streams flat out; never do that on a shared daemon)")
		ctrl     = flag.Int("ctrl", 256, "control-frame cadence in slots (directory + FEC descriptor)")

		imgPath = flag.String("image", "", "wire-cycle image file (dsigen -emit-image); serves the mmap'd byte stream, no in-memory build")
		csvPath = flag.String("dataset", "", "CSV dataset file (dsigen output); empty generates one")
		n       = flag.Int("n", 10000, "number of objects (generated datasets)")
		order   = flag.Uint("order", 8, "Hilbert curve order")
		seed    = flag.Int64("seed", 1, "dataset seed")
		real    = flag.Bool("real", false, "generate the REAL-like clustered dataset")

		capacity = flag.Int("capacity", 64, "packet capacity in bytes")
		segments = flag.Int("segments", 1, "broadcast reorganization factor m (shard layouts require 1)")
		objB     = flag.Int("objbytes", 0, "object payload bytes (0 = index default)")

		channels = flag.Int("channels", 4, "broadcast channels")
		sched    = flag.String("sched", "shard", "channel scheduler: single | split | shard")
		switchC  = flag.Int("switch", 2, "channel-switch cost in slots (multi-channel only)")

		fecObj   = flag.String("fec", "", "object erasure code as groups,parity (e.g. 4,1); empty = uncoded")
		fecTable = flag.String("fectable", "1,1", "index-table erasure code as groups,parity (with -fec)")

		swapEvery = flag.Int64("swapdemo", 0, "re-cut and swap the shard directory every this many slots (shard scheduler only; 0 = off)")
	)
	flag.Parse()

	var (
		src    station.PacketSource
		lay    *dsi.Layout
		meta   wire.StationMeta
		tick   func(int64)
		banner string
		fcfg   wire.FECConfig
	)
	if *imgPath != "" {
		img, err := diskstore.OpenImage(*imgPath)
		if err != nil {
			fatal(err)
		}
		defer img.Close()
		src, meta = img, img.Meta()
		banner = fmt.Sprintf("image %s (%s, %d channels)", *imgPath, meta.Dataset.Kind, img.Channels())
	} else {
		ds, kind, err := loadDataset(*csvPath, *n, *order, *seed, *real)
		if err != nil {
			fatal(err)
		}
		mcptr := *channels > 1
		x, err := dsi.Build(ds, dsi.Config{
			Capacity: *capacity, Segments: *segments, ObjectBytes: *objB, ReserveMCPtr: mcptr,
		})
		if err != nil {
			fatal(err)
		}
		var schedName string
		lay, schedName, err = buildLayout(x, *channels, *sched, *switchC)
		if err != nil {
			fatal(err)
		}
		fcfg, err = parseFEC(*fecObj, *fecTable)
		if err != nil {
			fatal(err)
		}

		meta = wire.StationMeta{
			Dataset: wire.StationDataset{
				Kind: kind, N: len(ds.Objects), Order: *order, Seed: *seed, Sum: ds.Checksum(),
			},
			Capacity: *capacity, Segments: *segments, ObjectBytes: *objB, ReserveMCPtr: mcptr,
			Channels: lay.Channels(), Scheduler: schedName, SwitchSlots: *switchC,
			ShardBounds: lay.ShardBounds(),
		}

		src, tick, err = buildSource(x, lay, schedName, *switchC, fcfg, *swapEvery)
		if err != nil {
			fatal(err)
		}
		banner = fmt.Sprintf("%s over %d-channel %s layout", ds.Name, lay.Channels(), schedName)
	}

	reg := obs.NewRegistry()
	srv, err := netsrv.New(netsrv.Config{
		Source: src, Layout: lay, Meta: meta,
		SlotsPerSec: *rate, CtrlEvery: *ctrl, Registry: reg, Tick: tick,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *udpAddr != "" {
		addr, err := srv.ServeUDP(ctx, *udpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dsistation: udp subscribe on %s\n", addr)
		if *mcast != "" {
			if err := srv.EnableMulticast(*mcast); err != nil {
				fatal(err)
			}
			fmt.Printf("dsistation: multicast base %s (+channel)\n", *mcast)
		}
	} else if *mcast != "" {
		fatal(fmt.Errorf("-mcast requires -udp (the datagram emitter carries both)"))
	}

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dsistation: %s, %d slots/sec\n", banner, *rate)
	if fcfg.Enabled() {
		fmt.Printf("dsistation: erasure-coded, object %v table %v\n", fcfg.Object, fcfg.Table)
	}
	fmt.Printf("dsistation: http on %s\n", ln.Addr())

	go func() { _ = srv.Run(ctx) }()
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		_ = hs.Close()
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed && ctx.Err() == nil {
		fatal(err)
	}
	fmt.Println("dsistation: shut down")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dsistation: %v\n", err)
	os.Exit(1)
}

// loadDataset resolves the broadcast's dataset and its catalog kind.
// The generated kinds must match netrecv's bootstrap regeneration
// exactly, or client checksums will refuse the catalog.
func loadDataset(csvPath string, n int, order uint, seed int64, real bool) (*dataset.Dataset, string, error) {
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		ds, err := dataset.ReadCSV(f, order)
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", csvPath, err)
		}
		return ds, "csv", nil
	}
	if real {
		return dataset.Clustered(dataset.DefaultRealConfig(seed)), "real", nil
	}
	return dataset.Uniform(n, order, seed), "uniform", nil
}

// buildLayout cuts the channel layout. Shard bounds are cut evenly
// across the data channels; -swapdemo re-cuts them live.
func buildLayout(x *dsi.Index, channels int, sched string, switchC int) (*dsi.Layout, string, error) {
	if channels <= 1 || sched == "single" {
		return x.SingleLayout(), "single", nil
	}
	switch sched {
	case "split":
		lay, err := dsi.NewLayout(x, dsi.MultiConfig{
			Channels: channels, Scheduler: dsi.SchedSplit, SwitchSlots: switchC,
		})
		return lay, "split", err
	case "shard":
		lay, err := dsi.NewLayout(x, dsi.MultiConfig{
			Channels: channels, Scheduler: dsi.SchedShard, SwitchSlots: switchC,
			ShardBounds: cutBounds(x.NF, channels, false),
		})
		return lay, "shard", err
	}
	return nil, "", fmt.Errorf("unknown scheduler %q (have single, split, shard)", sched)
}

// cutBounds cuts the frame range into data-channel shards: even thirds
// (quarters, ...) normally, a front-loaded quadratic cut when skewed —
// the alternate the swap demo flips to.
func cutBounds(nf, channels int, skew bool) []int {
	d := channels - 1
	b := make([]int, channels)
	for i := 1; i < d; i++ {
		if skew {
			b[i] = nf * (i*i + i) / (d*d + d)
		} else {
			b[i] = i * nf / d
		}
	}
	b[d] = nf
	return b
}

func parseFEC(obj, table string) (wire.FECConfig, error) {
	var cfg wire.FECConfig
	if obj == "" {
		return cfg, nil
	}
	parse := func(spec string, c *wire.FECCode) error {
		var g, p int
		if _, err := fmt.Sscanf(spec, "%d,%d", &g, &p); err != nil {
			return fmt.Errorf("bad FEC code %q (want groups,parity): %w", spec, err)
		}
		c.Groups, c.Parity = g, p
		return nil
	}
	if err := parse(obj, &cfg.Object); err != nil {
		return cfg, err
	}
	if err := parse(table, &cfg.Table); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// buildSource assembles the packet source: a plain transmitter, or —
// for the swap demo — a rebroadcaster whose Tick hook periodically
// stages a re-cut shard directory and commits it at the cycle seam,
// exercising live directory bumps over the network.
func buildSource(x *dsi.Index, lay *dsi.Layout, sched string, switchC int, fcfg wire.FECConfig, swapEvery int64) (station.PacketSource, func(int64), error) {
	if swapEvery > 0 {
		if sched != "shard" {
			return nil, nil, fmt.Errorf("-swapdemo needs the shard scheduler (directory swaps re-cut shard bounds)")
		}
		rb, err := station.NewRebroadcasterFEC(lay, fcfg)
		if err != nil {
			return nil, nil, err
		}
		nextSwap := swapEvery
		skew := false
		tick := func(abs int64) {
			rb.Commit(abs)
			if abs < nextSwap {
				return
			}
			nextSwap = abs + swapEvery
			skew = !skew
			alt, err := dsi.NewLayout(x, dsi.MultiConfig{
				Channels: lay.Channels(), Scheduler: dsi.SchedShard,
				SwitchSlots: switchC, ShardBounds: cutBounds(x.NF, lay.Channels(), skew),
			})
			if err != nil {
				return
			}
			if seam, err := rb.Stage(alt, abs+1); err == nil {
				fmt.Printf("dsistation: staged directory v%d at seam %d\n", rb.Version()+1, seam)
			}
		}
		return rb, tick, nil
	}
	if fcfg.Enabled() {
		src, err := station.NewMultiTransmitterFEC(lay, fcfg)
		return src, nil, err
	}
	src, err := station.NewMultiTransmitter(lay)
	return src, nil, err
}

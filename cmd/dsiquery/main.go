// Command dsiquery runs a single query against a simulated DSI
// broadcast and reports the result and its cost, for exploring how the
// index behaves under different configurations.
//
// With -net it queries a live dsistation daemon instead: the catalog
// is bootstrapped from the station's /v1/meta document and the query
// tunes in at the live edge of the real broadcast stream.
//
// Usage:
//
//	dsiquery -mode window -win 40,40,80,80
//	dsiquery -mode knn -q 128,128 -k 5 -segments 2 -theta 0.5
//	dsiquery -mode point -q 17,33 -capacity 128
//	dsiquery -net http://localhost:8345 -mode knn -q 60,60 -k 5
//	dsiquery -net http://localhost:8345 -transport udp -mode window -win 20,20,60,60
package main

import (
	"flag"
	"fmt"
	"os"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/netrecv"
	"dsi/internal/spatial"
)

func main() {
	var (
		n        = flag.Int("n", 10000, "number of objects")
		order    = flag.Uint("order", 8, "Hilbert curve order")
		seed     = flag.Int64("seed", 1, "dataset seed")
		real     = flag.Bool("real", false, "use the REAL-like clustered dataset")
		capacity = flag.Int("capacity", 64, "packet capacity in bytes")
		segments = flag.Int("segments", 2, "broadcast reorganization factor m")
		mode     = flag.String("mode", "knn", "query mode: window | knn | point")
		winSpec  = flag.String("win", "100,100,125,125", "window as minX,minY,maxX,maxY")
		qSpec    = flag.String("q", "128,128", "query point as x,y")
		k        = flag.Int("k", 10, "number of neighbors for knn")
		strat    = flag.String("strategy", "conservative", "knn strategy: conservative | aggressive")
		probe    = flag.Int64("probe", -1, "probe slot (-1 = middle of the cycle)")
		theta    = flag.Float64("theta", 0, "link-error ratio in [0,1)")
		trace    = flag.Bool("trace", false, "print every client step (probe, table, header, object)")
		channels = flag.Int("channels", 1, "parallel broadcast channels (>1 uses the split scheduler)")
		switchC  = flag.Int("switch", 2, "channel-switch cost in slots (multi-channel only)")
		netURL   = flag.String("net", "", "query a live dsistation at this base URL instead of simulating (e.g. http://localhost:8345)")
		netTrans = flag.String("transport", "http", "network transport with -net: http | sse | udp | mcast")
	)
	flag.Parse()

	if *netURL != "" {
		sess, ds, cleanup := openNet(*netURL, *netTrans)
		defer cleanup()
		runQuery(sess, ds, *mode, *winSpec, *qSpec, *k, *strat, *trace)
		return
	}

	var ds *dataset.Dataset
	if *real {
		cfg := dataset.DefaultRealConfig(*seed)
		cfg.Order = *order
		ds = dataset.Clustered(cfg)
	} else {
		ds = dataset.Uniform(*n, *order, *seed)
	}

	x, err := dsi.Build(ds, dsi.Config{Capacity: *capacity, Segments: *segments})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiquery: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dataset: %s\nbroadcast: %v\n", ds.Name, x)

	probeSlot := *probe
	if probeSlot < 0 {
		probeSlot = int64(x.Prog.Len() / 2)
	}
	var loss *broadcast.LossModel
	if *theta > 0 {
		loss = broadcast.NewLossModel(*theta, *seed+42)
	}
	opts := []dsi.Option{dsi.WithProbeSlot(probeSlot), dsi.WithLoss(loss)}
	if *channels > 1 {
		opts = append(opts, dsi.WithMultiConfig(dsi.MultiConfig{
			Channels:    *channels,
			Scheduler:   dsi.SchedSplit,
			SwitchSlots: *switchC,
		}))
	}
	sess, err := dsi.Open(x, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiquery: %v\n", err)
		os.Exit(1)
	}
	runQuery(sess, ds, *mode, *winSpec, *qSpec, *k, *strat, *trace)
}

// openNet bootstraps the station's catalog, attaches a network
// receiver over the chosen transport, and returns a session tuned at
// the live edge of the broadcast.
func openNet(baseURL, transport string) (*dsi.Session, *dataset.Dataset, func()) {
	opt := netrecv.Options{SSE: transport == "sse"}
	cat, err := netrecv.Bootstrap(baseURL, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiquery: %v\n", err)
		os.Exit(1)
	}
	var rx interface {
		dsi.Receiver
		LiveSlot() int64
		Close()
	}
	switch transport {
	case "http", "sse":
		rx, err = netrecv.NewHTTPReceiver(baseURL, cat, opt)
	case "udp":
		if cat.Meta.UDP == "" {
			err = fmt.Errorf("station has no UDP transport up (run dsistation with -udp)")
		} else {
			rx, err = netrecv.NewUDPReceiver(cat.Meta.UDP, -1, cat, opt)
		}
	case "mcast":
		if cat.Meta.Multicast == "" {
			err = fmt.Errorf("station has no multicast emission up (run dsistation with -mcast)")
		} else {
			rx, err = netrecv.NewMulticastReceiver(cat.Meta.Multicast, cat, opt)
		}
	default:
		err = fmt.Errorf("unknown transport %q (have http, sse, udp, mcast)", transport)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiquery: %v\n", err)
		os.Exit(1)
	}
	sess, err := dsi.Open(cat.X, dsi.WithReceiver(rx))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiquery: %v\n", err)
		os.Exit(1)
	}
	live := rx.LiveSlot()
	fmt.Printf("station: %s\ndataset: %s (catalog checksum ok)\ntuned at live slot %d over %s\n",
		baseURL, cat.DS.Name, live, transport)
	sess.Tune(live, nil)
	return sess, cat.DS, rx.Close
}

// runQuery executes one query against the session and prints the
// result with its broadcast-cost stats.
func runQuery(sess *dsi.Session, ds *dataset.Dataset, mode, winSpec, qSpec string, k int, strat string, trace bool) {
	c := sess.Client()
	if trace {
		c.SetTracer(func(e dsi.Event) { fmt.Println(" ", e) })
	}

	switch mode {
	case "window":
		var w spatial.Rect
		if _, err := fmt.Sscanf(winSpec, "%d,%d,%d,%d", &w.MinX, &w.MinY, &w.MaxX, &w.MaxY); err != nil {
			fmt.Fprintf(os.Stderr, "dsiquery: bad -win %q: %v\n", winSpec, err)
			os.Exit(2)
		}
		ids, st := sess.Window(w)
		fmt.Printf("window %v: %d objects\n", w, len(ids))
		printObjects(ds, ids, 10)
		printStats(st)
	case "knn":
		q, ok := parsePoint(qSpec)
		if !ok {
			os.Exit(2)
		}
		s := dsi.Conservative
		if strat == "aggressive" {
			s = dsi.Aggressive
		}
		ids, st := sess.KNN(q, k, s)
		fmt.Printf("%dNN at %v (%s strategy):\n", k, q, s)
		printObjects(ds, ids, k)
		printStats(st)
	case "point":
		q, ok := parsePoint(qSpec)
		if !ok {
			os.Exit(2)
		}
		id, found, st := sess.Point(q)
		if found {
			fmt.Printf("point %v: object %d\n", q, id)
		} else {
			fmt.Printf("point %v: no object\n", q)
		}
		printStats(st)
	default:
		fmt.Fprintf(os.Stderr, "dsiquery: unknown mode %q\n", mode)
		os.Exit(2)
	}
}

func parsePoint(spec string) (spatial.Point, bool) {
	var p spatial.Point
	if _, err := fmt.Sscanf(spec, "%d,%d", &p.X, &p.Y); err != nil {
		fmt.Fprintf(os.Stderr, "dsiquery: bad point %q: %v\n", spec, err)
		return p, false
	}
	return p, true
}

func printObjects(ds *dataset.Dataset, ids []int, limit int) {
	for i, id := range ids {
		if i == limit {
			fmt.Printf("  ... and %d more\n", len(ids)-limit)
			return
		}
		o := ds.ByID(id)
		fmt.Printf("  object %5d at %v (hc=%d)\n", o.ID, o.P, o.HC)
	}
}

func printStats(st broadcast.Stats) {
	fmt.Printf("cost: access latency %d bytes, tuning time %d bytes (probe slot %d)\n",
		st.LatencyBytes(), st.TuningBytes(), st.ProbeSlot)
}

// Command dsiquery runs a single query against a simulated DSI
// broadcast and reports the result and its cost, for exploring how the
// index behaves under different configurations.
//
// Usage:
//
//	dsiquery -mode window -win 40,40,80,80
//	dsiquery -mode knn -q 128,128 -k 5 -segments 2 -theta 0.5
//	dsiquery -mode point -q 17,33 -capacity 128
package main

import (
	"flag"
	"fmt"
	"os"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
)

func main() {
	var (
		n        = flag.Int("n", 10000, "number of objects")
		order    = flag.Uint("order", 8, "Hilbert curve order")
		seed     = flag.Int64("seed", 1, "dataset seed")
		real     = flag.Bool("real", false, "use the REAL-like clustered dataset")
		capacity = flag.Int("capacity", 64, "packet capacity in bytes")
		segments = flag.Int("segments", 2, "broadcast reorganization factor m")
		mode     = flag.String("mode", "knn", "query mode: window | knn | point")
		winSpec  = flag.String("win", "100,100,125,125", "window as minX,minY,maxX,maxY")
		qSpec    = flag.String("q", "128,128", "query point as x,y")
		k        = flag.Int("k", 10, "number of neighbors for knn")
		strat    = flag.String("strategy", "conservative", "knn strategy: conservative | aggressive")
		probe    = flag.Int64("probe", -1, "probe slot (-1 = middle of the cycle)")
		theta    = flag.Float64("theta", 0, "link-error ratio in [0,1)")
		trace    = flag.Bool("trace", false, "print every client step (probe, table, header, object)")
		channels = flag.Int("channels", 1, "parallel broadcast channels (>1 uses the split scheduler)")
		switchC  = flag.Int("switch", 2, "channel-switch cost in slots (multi-channel only)")
	)
	flag.Parse()

	var ds *dataset.Dataset
	if *real {
		cfg := dataset.DefaultRealConfig(*seed)
		cfg.Order = *order
		ds = dataset.Clustered(cfg)
	} else {
		ds = dataset.Uniform(*n, *order, *seed)
	}

	x, err := dsi.Build(ds, dsi.Config{Capacity: *capacity, Segments: *segments})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiquery: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dataset: %s\nbroadcast: %v\n", ds.Name, x)

	probeSlot := *probe
	if probeSlot < 0 {
		probeSlot = int64(x.Prog.Len() / 2)
	}
	var loss *broadcast.LossModel
	if *theta > 0 {
		loss = broadcast.NewLossModel(*theta, *seed+42)
	}
	opts := []dsi.Option{dsi.WithProbeSlot(probeSlot), dsi.WithLoss(loss)}
	if *channels > 1 {
		opts = append(opts, dsi.WithMultiConfig(dsi.MultiConfig{
			Channels:    *channels,
			Scheduler:   dsi.SchedSplit,
			SwitchSlots: *switchC,
		}))
	}
	sess, err := dsi.Open(x, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiquery: %v\n", err)
		os.Exit(1)
	}
	c := sess.Client()
	if *trace {
		c.SetTracer(func(e dsi.Event) { fmt.Println(" ", e) })
	}

	switch *mode {
	case "window":
		var w spatial.Rect
		if _, err := fmt.Sscanf(*winSpec, "%d,%d,%d,%d", &w.MinX, &w.MinY, &w.MaxX, &w.MaxY); err != nil {
			fmt.Fprintf(os.Stderr, "dsiquery: bad -win %q: %v\n", *winSpec, err)
			os.Exit(2)
		}
		ids, st := c.Window(w)
		fmt.Printf("window %v: %d objects\n", w, len(ids))
		printObjects(ds, ids, 10)
		printStats(st)
	case "knn":
		q, ok := parsePoint(*qSpec)
		if !ok {
			os.Exit(2)
		}
		s := dsi.Conservative
		if *strat == "aggressive" {
			s = dsi.Aggressive
		}
		ids, st := c.KNN(q, *k, s)
		fmt.Printf("%dNN at %v (%s strategy):\n", *k, q, s)
		printObjects(ds, ids, *k)
		printStats(st)
	case "point":
		q, ok := parsePoint(*qSpec)
		if !ok {
			os.Exit(2)
		}
		id, found, st := c.Point(q)
		if found {
			fmt.Printf("point %v: object %d\n", q, id)
		} else {
			fmt.Printf("point %v: no object\n", q)
		}
		printStats(st)
	default:
		fmt.Fprintf(os.Stderr, "dsiquery: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func parsePoint(spec string) (spatial.Point, bool) {
	var p spatial.Point
	if _, err := fmt.Sscanf(spec, "%d,%d", &p.X, &p.Y); err != nil {
		fmt.Fprintf(os.Stderr, "dsiquery: bad point %q: %v\n", spec, err)
		return p, false
	}
	return p, true
}

func printObjects(ds *dataset.Dataset, ids []int, limit int) {
	for i, id := range ids {
		if i == limit {
			fmt.Printf("  ... and %d more\n", len(ids)-limit)
			return
		}
		o := ds.ByID(id)
		fmt.Printf("  object %5d at %v (hc=%d)\n", o.ID, o.P, o.HC)
	}
}

func printStats(st broadcast.Stats) {
	fmt.Printf("cost: access latency %d bytes, tuning time %d bytes (probe slot %d)\n",
		st.LatencyBytes(), st.TuningBytes(), st.ProbeSlot)
}

// Command dsigen generates the evaluation datasets as CSV on stdout:
// one line per object with its ID (HC rank), cell coordinates, and
// Hilbert-curve value, sorted in broadcast (HC) order.
//
// Usage:
//
//	dsigen -n 10000 -order 8 -seed 1 > uniform.csv
//	dsigen -real > real_like.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dsi/internal/dataset"
)

func main() {
	var (
		n     = flag.Int("n", 10000, "number of objects")
		order = flag.Uint("order", 8, "Hilbert curve order (grid is 2^order square)")
		seed  = flag.Int64("seed", 1, "generator seed")
		real  = flag.Bool("real", false, "generate the REAL-like clustered dataset (5848 Greek-city stand-in)")
	)
	flag.Parse()

	var ds *dataset.Dataset
	if *real {
		cfg := dataset.DefaultRealConfig(*seed)
		if *n != 10000 { // only override the REAL default when asked
			cfg.N = *n
		}
		cfg.Order = *order
		ds = dataset.Clustered(cfg)
	} else {
		ds = dataset.Uniform(*n, *order, *seed)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# %s\n", ds.Name)
	fmt.Fprintln(w, "id,x,y,hc")
	for _, o := range ds.Objects {
		fmt.Fprintf(w, "%d,%d,%d,%d\n", o.ID, o.P.X, o.P.Y, o.HC)
	}
}

// Command dsigen generates the evaluation datasets as CSV on stdout:
// one line per object with its ID (HC rank), cell coordinates, and
// Hilbert-curve value, sorted in broadcast (HC) order.
//
// With -emit-image it instead runs the out-of-core pipeline: the
// dataset streams through an external sort into a wire-cycle image
// file — the exact transmitter byte stream, servable by
// dsistation -image — holding at most -budget object records in heap
// no matter how large -n is.
//
// Usage:
//
//	dsigen -n 10000 -order 8 -seed 1 > uniform.csv
//	dsigen -real > real_like.csv
//	dsigen -n 10000000 -order 11 -emit-image u10m.img -budget 1000000
//	dsigen -n 100000 -emit-image u.img -sidecars -emit-trees
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dsi/internal/bptree"
	"dsi/internal/dataset"
	"dsi/internal/diskstore"
	"dsi/internal/dsi"
	"dsi/internal/rtree"
)

func main() {
	var (
		n     = flag.Int("n", 10000, "number of objects")
		order = flag.Uint("order", 8, "Hilbert curve order (grid is 2^order square)")
		seed  = flag.Int64("seed", 1, "generator seed")
		real  = flag.Bool("real", false, "generate the REAL-like clustered dataset (5848 Greek-city stand-in)")

		emitImage = flag.String("emit-image", "", "build a wire-cycle image at this path instead of CSV (out-of-core)")
		budget    = flag.Int("budget", 0, "max object records held in heap by the external sort (0 = default)")
		capacity  = flag.Int("capacity", 64, "packet capacity in bytes (with -emit-image)")
		segments  = flag.Int("segments", 1, "broadcast reorganization factor m (with -emit-image)")
		objB      = flag.Int("objbytes", 0, "object payload bytes, 0 = index default (with -emit-image)")
		sidecars  = flag.Bool("sidecars", false, "keep the sorted object/frame sidecar files beside the image")
		emitTrees = flag.Bool("emit-trees", false, "also bulk-load the B+-tree and R-tree node files from the sidecars (implies -sidecars)")
	)
	flag.Parse()

	if *emitImage != "" {
		if err := buildImage(*emitImage, *n, *order, *seed, *real,
			dsi.Config{Capacity: *capacity, Segments: *segments, ObjectBytes: *objB},
			*budget, *sidecars || *emitTrees, *emitTrees); err != nil {
			fmt.Fprintf(os.Stderr, "dsigen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var ds *dataset.Dataset
	if *real {
		cfg := dataset.DefaultRealConfig(*seed)
		if *n != 10000 { // only override the REAL default when asked
			cfg.N = *n
		}
		cfg.Order = *order
		ds = dataset.Clustered(cfg)
	} else {
		ds = dataset.Uniform(*n, *order, *seed)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# %s\n", ds.Name)
	fmt.Fprintln(w, "id,x,y,hc")
	for _, o := range ds.Objects {
		fmt.Fprintf(w, "%d,%d,%d,%d\n", o.ID, o.P.X, o.P.Y, o.HC)
	}
}

// buildImage runs the streaming build and reports what it wrote. The
// image is byte-identical to what the in-memory build transmits.
func buildImage(path string, n int, order uint, seed int64, real bool, cfg dsi.Config, budget int, sidecars, trees bool) error {
	ps := diskstore.UniformStream(n, order, seed)
	if real {
		ps = diskstore.RealStream(seed)
	}
	stats, err := diskstore.BuildImage(path, ps, cfg, diskstore.BuildOptions{
		Budget: budget, KeepSidecars: sidecars,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dsigen: %s: %d objects, %d frames, %d slots/cycle, checksum %#x (%d spilled runs)\n",
		path, stats.Geo.N, stats.Geo.NF, stats.Geo.CycleSlots(), stats.Checksum, stats.SpilledRuns)
	if !trees {
		return nil
	}
	if f := bptree.FanoutFor(cfg.Capacity); f > 0 {
		bpt := path + ".bpt"
		if err := diskstore.BuildBPTreeFile(bpt, stats.ObjectsPath, f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dsigen: %s: B+-tree node file, fanout %d\n", bpt, f)
	}
	if f := rtree.FanoutFor(cfg.Capacity); f > 0 {
		rtr := path + ".rtr"
		if err := diskstore.BuildRTreeFile(rtr, stats.ObjectsPath, f,
			diskstore.BuildOptions{Budget: budget}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dsigen: %s: R-tree node file, fanout %d\n", rtr, f)
	}
	return nil
}

// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON artifact, so CI runs accumulate a benchmark
// trajectory (one BENCH_<sha>.json per commit) instead of burying the
// numbers in build logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -sha $SHA -o BENCH_$SHA.json
//
// Every benchmark result line ("BenchmarkX-8  10  123 ns/op  45 B/op
// 6 allocs/op  78 extra-metric") becomes one record carrying ns/op,
// B/op, allocs/op and any custom metrics keyed by their unit. Non-
// benchmark lines (goos/goarch/pkg headers, PASS/ok trailers) set the
// run's metadata or are skipped. The command fails when no benchmark
// parses — a broken bench pipeline should fail the workflow, not upload
// an empty artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the full benchmark name including the -P GOMAXPROCS
	// suffix and any sub-benchmark path.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (from the preceding
	// "pkg:" header line; empty when the output carries none).
	Pkg string `json:"pkg,omitempty"`
	// Runs is the iteration count (the b.N the reported means cover).
	Runs int64 `json:"runs"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are reported under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Percentiles promotes custom metrics whose unit names a percentile
	// ("p95_lat_B", "p999") into their own map, so trajectory tooling
	// can find a benchmark's distribution surface without knowing each
	// experiment's unit vocabulary.
	Percentiles map[string]float64 `json:"percentiles,omitempty"`
	// Counters promotes custom metrics whose unit carries the "_total"
	// counter suffix ("resyncs_total") — the obs counter snapshots the
	// instrumented benchmarks report per op — so the artifact serves
	// operational counts next to the latency surface.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// percentileUnit reports whether a custom-metric unit names a
// percentile: "p" followed by digits, optionally followed by
// "_<qualifier>" ("p95_lat_B", "p999", "p50_tun_B").
func percentileUnit(unit string) bool {
	if len(unit) < 2 || unit[0] != 'p' {
		return false
	}
	i := 1
	for i < len(unit) && unit[i] >= '0' && unit[i] <= '9' {
		i++
	}
	if i == 1 {
		return false
	}
	return i == len(unit) || unit[i] == '_'
}

// File is the JSON artifact layout.
type File struct {
	SHA        string      `json:"sha"`
	GoOS       string      `json:"goos"`
	GoArch     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes `go test -bench` output and returns the artifact
// body. goos/goarch/cpu/pkg header lines annotate the run; they default
// to the host's when the output carries none.
func parse(r io.Reader) (File, error) {
	out := File{GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			out.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if b, ok := parseLine(line); ok {
			b.Pkg = pkg
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	return out, sc.Err()
}

// parseLine parses one benchmark result line. ok is false for anything
// that is not one (headers, PASS/ok trailers, test chatter).
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Runs: runs}
	seenNs := false
	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		default:
			if percentileUnit(unit) {
				if b.Percentiles == nil {
					b.Percentiles = map[string]float64{}
				}
				b.Percentiles[unit] = v
				continue
			}
			if strings.HasSuffix(unit, "_total") {
				if b.Counters == nil {
					b.Counters = map[string]float64{}
				}
				b.Counters[unit] = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, seenNs
}

func main() {
	sha := flag.String("sha", os.Getenv("GITHUB_SHA"), "commit SHA recorded in the artifact")
	outPath := flag.String("o", "", "output path (default BENCH_<sha>.json)")
	flag.Parse()

	file, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(file.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in input")
		os.Exit(1)
	}
	file.SHA = *sha
	path := *outPath
	if path == "" {
		if *sha == "" {
			fmt.Fprintln(os.Stderr, "benchjson: need -sha or -o")
			os.Exit(1)
		}
		path = "BENCH_" + *sha + ".json"
	}
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(file.Benchmarks), path)
}

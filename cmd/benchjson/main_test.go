package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dsi
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig8-8            	       1	 226103073 ns/op	       364.0 fig8a-Original-B	        82.00 fig8b-Original-B
BenchmarkQueryThroughput/window/C=64-8         	     226	   5296936 ns/op	    2622 B/op	      30 allocs/op
BenchmarkClientReuse/window/reused-8           	    3488	    322353 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	dsi	36.846s
pkg: dsi/internal/experiment
BenchmarkDrift 	       1	   1421328 ns/op
--- BENCH: BenchmarkSomethingVerbose
    bench_test.go:1: chatter
FAIL
exit status 1
`

func TestParseSample(t *testing.T) {
	f, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GoOS != "linux" || f.GoArch != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Fatalf("metadata: %+v", f)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}

	fig8 := f.Benchmarks[0]
	if fig8.Name != "BenchmarkFig8-8" || fig8.Runs != 1 || fig8.NsPerOp != 226103073 || fig8.Pkg != "dsi" {
		t.Fatalf("fig8: %+v", fig8)
	}
	if fig8.Metrics["fig8a-Original-B"] != 364 || fig8.Metrics["fig8b-Original-B"] != 82 {
		t.Fatalf("fig8 custom metrics: %+v", fig8.Metrics)
	}
	if fig8.BytesPerOp != nil {
		t.Fatal("fig8 has no -benchmem columns")
	}

	tput := f.Benchmarks[1]
	if tput.Name != "BenchmarkQueryThroughput/window/C=64-8" {
		t.Fatalf("sub-benchmark name: %q", tput.Name)
	}
	if tput.BytesPerOp == nil || *tput.BytesPerOp != 2622 || tput.AllocsPerOp == nil || *tput.AllocsPerOp != 30 {
		t.Fatalf("benchmem columns: %+v", tput)
	}

	reuse := f.Benchmarks[2]
	if *reuse.BytesPerOp != 0 || *reuse.AllocsPerOp != 0 {
		t.Fatalf("zero-alloc columns lost: %+v", reuse)
	}

	drift := f.Benchmarks[3]
	if drift.Name != "BenchmarkDrift" || drift.Pkg != "dsi/internal/experiment" || drift.NsPerOp != 1421328 {
		t.Fatalf("drift: %+v", drift)
	}
}

func TestParseLineRejectsChatter(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	dsi	36.8s",
		"--- BENCH: BenchmarkVerbose",
		"Benchmark without numbers",
		"BenchmarkX-8 notanumber 12 ns/op",
		"BenchmarkX-8 3 twelve ns/op",
		"BenchmarkNoNs-8 3 12 B/op", // a result line must carry ns/op
	} {
		if b, ok := parseLine(line); ok {
			t.Errorf("line %q parsed as %+v", line, b)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	f, err := parse(strings.NewReader("PASS\nok x 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Fatalf("benchmarks from empty input: %+v", f.Benchmarks)
	}
}

const percentileSample = `pkg: dsi/internal/massive
BenchmarkReplay/classic-8 	       1	4477069898 ns/op	      1116 clients/s	    301696 p95_lat_B	    336512 p99_lat_B	      4033 p95_tun_B	        14.00 state_B/client
PASS
`

func TestParsePromotesPercentiles(t *testing.T) {
	f, err := parse(strings.NewReader(percentileSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	want := map[string]float64{"p95_lat_B": 301696, "p99_lat_B": 336512, "p95_tun_B": 4033}
	if len(b.Percentiles) != len(want) {
		t.Fatalf("percentiles: %+v", b.Percentiles)
	}
	for k, v := range want {
		if b.Percentiles[k] != v {
			t.Errorf("percentile %s = %v, want %v", k, b.Percentiles[k], v)
		}
	}
	// Non-percentile custom metrics stay in Metrics.
	if b.Metrics["clients/s"] != 1116 || b.Metrics["state_B/client"] != 14 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
	if _, ok := b.Metrics["p95_lat_B"]; ok {
		t.Error("percentile unit duplicated into Metrics")
	}
}

const counterSample = `pkg: dsi/internal/experiment
BenchmarkDrift-8 	       2	 812345678 ns/op	        42.00 resyncs_total	        12.00 seam_swaps_total	      1234 lat_B
PASS
`

func TestParsePromotesCounters(t *testing.T) {
	f, err := parse(strings.NewReader(counterSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	want := map[string]float64{"resyncs_total": 42, "seam_swaps_total": 12}
	if len(b.Counters) != len(want) {
		t.Fatalf("counters: %+v", b.Counters)
	}
	for k, v := range want {
		if b.Counters[k] != v {
			t.Errorf("counter %s = %v, want %v", k, b.Counters[k], v)
		}
	}
	// Non-counter custom metrics stay in Metrics; counters don't leak in.
	if b.Metrics["lat_B"] != 1234 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
	if _, ok := b.Metrics["resyncs_total"]; ok {
		t.Error("counter unit duplicated into Metrics")
	}
}

func TestPercentileUnit(t *testing.T) {
	yes := []string{"p50", "p999", "p95_lat_B", "p99_tun_B"}
	no := []string{"", "p", "clients/s", "pN", "px_lat", "q95", "state_B/client", "p_lat"}
	for _, u := range yes {
		if !percentileUnit(u) {
			t.Errorf("percentileUnit(%q) = false, want true", u)
		}
	}
	for _, u := range no {
		if percentileUnit(u) {
			t.Errorf("percentileUnit(%q) = true, want false", u)
		}
	}
}

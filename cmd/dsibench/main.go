// Command dsibench regenerates the paper's evaluation artifacts: every
// figure (Fig. 8-12), Table 1, the REAL-dataset comparisons, and the
// ablations listed in DESIGN.md.
//
// Usage:
//
//	dsibench -list
//	dsibench -exp fig9 -queries 200
//	dsibench -exp all -queries 100 -verify
//
// Results are printed as aligned text tables, one row per X value and
// one column per series, with byte values in the units the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dsi/internal/experiment"
	"dsi/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see -list) or 'all'")
		list     = flag.Bool("list", false, "list available experiments and exit")
		queries  = flag.Int("queries", 100, "queries averaged per data point")
		n        = flag.Int("n", 0, "dataset cardinality (0 = paper default)")
		order    = flag.Uint("order", 0, "Hilbert curve order (0 = paper default)")
		seed     = flag.Int64("seed", 1, "dataset and workload seed")
		verify   = flag.Bool("verify", true, "cross-check every query against brute force")
		csv      = flag.Bool("csv", false, "emit figures as CSV instead of text tables")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"worker bound for sharding data points and queries (results are identical at any value; 1 = sequential)")
		metrics = flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (e.g. :9090; empty = off)")
	)
	flag.Parse()
	experiment.SetParallelism(*parallel)

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		addr, err := obs.Serve(*metrics, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsibench: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dsibench: serving /metrics and /debug/pprof on http://%s\n", addr)
	}

	if *list {
		fmt.Println("available experiments:")
		for _, name := range experiment.Names() {
			fmt.Printf("  %s\n", name)
		}
		return
	}

	params := experiment.Params{
		N:       *n,
		Order:   *order,
		Seed:    *seed,
		Queries: *queries,
		Verify:  *verify,
		Obs:     reg,
	}

	var names []string
	if *exp == "all" {
		names = experiment.Names()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if _, ok := experiment.Registry[name]; !ok {
				fmt.Fprintf(os.Stderr, "dsibench: unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
			names = append(names, name)
		}
	}

	for _, name := range names {
		start := time.Now()
		res := experiment.Registry[name](params)
		fmt.Printf("=== %s (queries/point=%d, seed=%d, workers=%d, %.1fs) ===\n\n",
			name, params.Queries, params.Seed, experiment.Parallelism(), time.Since(start).Seconds())
		if *csv {
			fmt.Print(res.CSV())
			for i := range res.Tables {
				fmt.Print(res.Tables[i].Format())
			}
		} else {
			fmt.Print(res.Format())
		}
	}
}

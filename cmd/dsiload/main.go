// Command dsiload drives the event-driven replay engine at population
// scale: a configurable number of concurrent window/kNN clients — a
// million by default — replayed against the four broadcast
// organizations (classic, split, sharded, erasure-coded) at matched
// per-channel bandwidth, reporting the percentile surface per arm plus
// the engine's own throughput and per-client state budget.
//
// Usage:
//
//	dsiload                          # 1M clients, all four arms
//	dsiload -clients 250000 -arms classic,shard
//	dsiload -json                    # machine-readable reports
//	dsiload -metrics :9090           # live /metrics + /debug/pprof
//	dsiload -trace out.jsonl         # slot timelines of a client sample
//	dsiload -parallel                # interleave the arms across workers
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"dsi/internal/massive"
	"dsi/internal/obs"
)

func main() {
	var (
		clients  = flag.Int("clients", 1_000_000, "concurrent clients per arm")
		n        = flag.Int("n", 10000, "number of objects")
		order    = flag.Int("order", 8, "Hilbert curve order")
		seed     = flag.Int64("seed", 1, "dataset + population seed")
		objB     = flag.Int("objbytes", 1024, "object payload bytes")
		chans    = flag.Int("channels", 4, "channels of the split and sharded arms")
		knnFrac  = flag.Float64("knnfrac", 0.5, "fraction of clients running kNN queries")
		k        = flag.Int("k", 5, "kNN k")
		win      = flag.Float64("win", 0.1, "window side / grid side")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		arms     = flag.String("arms", "", "comma-separated arm subset (classic,split,shard,fec); empty = all")
		asJSON   = flag.Bool("json", false, "emit reports as JSON")
		metrics  = flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (e.g. :9090; empty = off)")
		trace    = flag.String("trace", "", "write per-query slot-timeline JSONL for a sampled client subset to this file")
		traceSmp = flag.Int("tracesample", 1000, "trace roughly one in this many clients (deterministic sample)")
		parallel = flag.Bool("parallel", false, "replay the selected arms concurrently, splitting the workers among them")
	)
	flag.Parse()

	bed, err := massive.NewTestbed(massive.BedConfig{
		N: *n, Order: *order, Seed: *seed, Channels: *chans, ObjectBytes: *objB,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiload: %v\n", err)
		os.Exit(1)
	}
	picked := bed.Arms
	if *arms != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*arms, ",") {
			want[strings.TrimSpace(name)] = true
		}
		picked = picked[:0:0]
		for _, arm := range bed.Arms {
			if want[arm.Name] {
				picked = append(picked, arm)
				delete(want, arm.Name)
			}
		}
		if len(want) > 0 || len(picked) == 0 {
			fmt.Fprintf(os.Stderr, "dsiload: unknown arms in %q (have classic,split,shard,fec)\n", *arms)
			os.Exit(1)
		}
	}

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		massive.RegisterMetrics(reg, bed)
		addr, err := obs.Serve(*metrics, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsiload: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dsiload: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	var tracer *obs.Tracer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsiload: trace file: %v\n", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		tracer = obs.NewTracer(bw, *traceSmp, *seed)
		defer func() {
			bw.Flush()
			f.Close()
			fmt.Printf("dsiload: traced %d client timelines to %s\n", tracer.Emitted(), *trace)
		}()
	}

	kf := *knnFrac
	if kf == 0 {
		// Config treats a zero KNNFrac as unset (default 0.5); a negative
		// fraction expresses "window-only" without tripping the default.
		kf = -1
	}
	cfg := massive.Config{
		Clients: *clients, KNNFrac: kf, K: *k,
		WinSideRatio: *win, Seed: *seed + 1000, Workers: *workers,
		Obs: reg, Trace: tracer,
	}
	fmt.Printf("dsiload: %d clients/arm over %d objects (order %d), %d-byte objects\n",
		*clients, *n, *order, *objB)

	reports := make([]massive.Report, len(picked))
	if *parallel {
		// Arms share the machine, so per-arm wall time — and with it the
		// clients/sec column — measures contention, not engine throughput;
		// only the sequential mode reports honest per-arm rates. The
		// percentile surfaces are unaffected (client outcomes are a
		// function of client id alone, at any scheduling).
		per := cfg
		per.Workers = *workers
		if per.Workers <= 0 {
			per.Workers = runtime.GOMAXPROCS(0)
		}
		if per.Workers > len(picked) {
			per.Workers /= len(picked)
		} else {
			per.Workers = 1
		}
		var wg sync.WaitGroup
		for i, arm := range picked {
			wg.Add(1)
			go func(i int, arm *massive.Arm) {
				defer wg.Done()
				t0 := time.Now()
				res := massive.Run(bed, arm, per)
				reports[i] = res.ReportOf(arm, bed.X.Cfg.Capacity, time.Since(t0).Seconds())
			}(i, arm)
		}
		wg.Wait()
		if !*asJSON {
			for _, rep := range reports {
				fmt.Printf("%-8s %9.1fs  %12.0f clients/s (interleaved; rate reflects contention)  %2.0f B/client\n",
					rep.Name, rep.Seconds, rep.ClientsPerSec, rep.BytesPerClient)
			}
		}
	} else {
		for i, arm := range picked {
			t0 := time.Now()
			res := massive.Run(bed, arm, cfg)
			secs := time.Since(t0).Seconds()
			rep := res.ReportOf(arm, bed.X.Cfg.Capacity, secs)
			reports[i] = rep
			if !*asJSON {
				fmt.Printf("%-8s %9.1fs  %12.0f clients/s  %2.0f B/client\n",
					arm.Name, secs, rep.ClientsPerSec, rep.BytesPerClient)
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "dsiload: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("\n%-8s %12s %12s %12s %12s %12s %10s %8s\n",
		"arm", "lat p50", "lat p95", "lat p99", "lat p999", "tun p50", "tun p99", "sw p99")
	for _, rep := range reports {
		fmt.Printf("%-8s %12.0f %12.0f %12.0f %12.0f %12.0f %10.0f %8.0f\n",
			rep.Name,
			rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.P999,
			rep.Tuning.P50, rep.Tuning.P99, rep.Switches.P99)
	}
	fmt.Println("\nlatency/tuning in bytes at 64B packets; state is durable bytes per client")
}

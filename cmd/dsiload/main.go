// Command dsiload drives the event-driven replay engine at population
// scale: a configurable number of concurrent window/kNN clients — a
// million by default — replayed against the four broadcast
// organizations (classic, split, sharded, erasure-coded) at matched
// per-channel bandwidth, reporting the percentile surface per arm plus
// the engine's own throughput and per-client state budget.
//
// Usage:
//
//	dsiload                          # 1M clients, all four arms
//	dsiload -clients 250000 -arms classic,shard
//	dsiload -json                    # machine-readable reports
//	dsiload -metrics :9090           # live /metrics + /debug/pprof
//	dsiload -trace out.jsonl         # slot timelines of a client sample
//	dsiload -parallel                # interleave the arms across workers
//
// With -net it instead drives concurrent network clients against a
// live dsistation daemon, each with its own transport subscription and
// receiver, and reports served-queries/sec with latency percentiles:
//
//	dsiload -net http://localhost:8345                      # 1000 HTTP clients
//	dsiload -net http://localhost:8345 -transport udp -netclients 50
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dsi/internal/dsi"
	"dsi/internal/massive"
	"dsi/internal/netrecv"
	"dsi/internal/obs"
	"dsi/internal/spatial"
)

func main() {
	var (
		clients  = flag.Int("clients", 1_000_000, "concurrent clients per arm")
		n        = flag.Int("n", 10000, "number of objects")
		order    = flag.Int("order", 8, "Hilbert curve order")
		seed     = flag.Int64("seed", 1, "dataset + population seed")
		objB     = flag.Int("objbytes", 1024, "object payload bytes")
		chans    = flag.Int("channels", 4, "channels of the split and sharded arms")
		knnFrac  = flag.Float64("knnfrac", 0.5, "fraction of clients running kNN queries")
		k        = flag.Int("k", 5, "kNN k")
		win      = flag.Float64("win", 0.1, "window side / grid side")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		arms     = flag.String("arms", "", "comma-separated arm subset (classic,split,shard,fec); empty = all")
		asJSON   = flag.Bool("json", false, "emit reports as JSON")
		metrics  = flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (e.g. :9090; empty = off)")
		trace    = flag.String("trace", "", "write per-query slot-timeline JSONL for a sampled client subset to this file")
		traceSmp = flag.Int("tracesample", 1000, "trace roughly one in this many clients (deterministic sample)")
		parallel = flag.Bool("parallel", false, "replay the selected arms concurrently, splitting the workers among them")

		netURL     = flag.String("net", "", "drive network clients against a live dsistation at this base URL instead of replaying in-process")
		netClients = flag.Int("netclients", 1000, "concurrent network clients with -net")
		netQueries = flag.Int("queries", 4, "queries per network client with -net")
		netTrans   = flag.String("transport", "http", "network transport with -net: http | sse | udp")
		netRing    = flag.Int("ring", 2048, "per-client reassembly ring in slots with -net")
		netRamp    = flag.Int("ramp", 100, "subscription ramp with -net: at most this many clients connecting at once")
	)
	flag.Parse()

	if *netURL != "" {
		var reg *obs.Registry
		if *metrics != "" {
			reg = obs.NewRegistry()
			addr, err := obs.Serve(*metrics, reg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsiload: metrics listener: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("dsiload: serving /metrics and /debug/pprof on http://%s\n", addr)
		}
		runNet(*netURL, *netTrans, *netClients, *netQueries, *knnFrac, *k, *win, *seed, *netRing, *netRamp, reg)
		return
	}

	bed, err := massive.NewTestbed(massive.BedConfig{
		N: *n, Order: *order, Seed: *seed, Channels: *chans, ObjectBytes: *objB,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiload: %v\n", err)
		os.Exit(1)
	}
	picked := bed.Arms
	if *arms != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*arms, ",") {
			want[strings.TrimSpace(name)] = true
		}
		picked = picked[:0:0]
		for _, arm := range bed.Arms {
			if want[arm.Name] {
				picked = append(picked, arm)
				delete(want, arm.Name)
			}
		}
		if len(want) > 0 || len(picked) == 0 {
			fmt.Fprintf(os.Stderr, "dsiload: unknown arms in %q (have classic,split,shard,fec)\n", *arms)
			os.Exit(1)
		}
	}

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		massive.RegisterMetrics(reg, bed)
		addr, err := obs.Serve(*metrics, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsiload: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dsiload: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	var tracer *obs.Tracer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsiload: trace file: %v\n", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		tracer = obs.NewTracer(bw, *traceSmp, *seed)
		defer func() {
			bw.Flush()
			f.Close()
			fmt.Printf("dsiload: traced %d client timelines to %s\n", tracer.Emitted(), *trace)
		}()
	}

	kf := *knnFrac
	if kf == 0 {
		// Config treats a zero KNNFrac as unset (default 0.5); a negative
		// fraction expresses "window-only" without tripping the default.
		kf = -1
	}
	cfg := massive.Config{
		Clients: *clients, KNNFrac: kf, K: *k,
		WinSideRatio: *win, Seed: *seed + 1000, Workers: *workers,
		Obs: reg, Trace: tracer,
	}
	fmt.Printf("dsiload: %d clients/arm over %d objects (order %d), %d-byte objects\n",
		*clients, *n, *order, *objB)

	reports := make([]massive.Report, len(picked))
	wall := time.Now()
	if *parallel {
		// Arms share the machine, so per-arm wall time — and with it the
		// clients/sec column — measures contention, not engine throughput;
		// only the sequential mode reports honest per-arm rates. The
		// percentile surfaces are unaffected (client outcomes are a
		// function of client id alone, at any scheduling).
		per := cfg
		per.Workers = *workers
		if per.Workers <= 0 {
			per.Workers = runtime.GOMAXPROCS(0)
		}
		if per.Workers > len(picked) {
			per.Workers /= len(picked)
		} else {
			per.Workers = 1
		}
		var wg sync.WaitGroup
		for i, arm := range picked {
			wg.Add(1)
			go func(i int, arm *massive.Arm) {
				defer wg.Done()
				t0 := time.Now()
				res := massive.Run(bed, arm, per)
				reports[i] = res.ReportOf(arm, bed.X.Cfg.Capacity, time.Since(t0).Seconds())
			}(i, arm)
		}
		wg.Wait()
		if !*asJSON {
			for _, rep := range reports {
				fmt.Printf("%-8s %9.1fs  %12.0f clients/s (interleaved; rate reflects contention)  %2.0f B/client\n",
					rep.Name, rep.Seconds, rep.ClientsPerSec, rep.BytesPerClient)
			}
		}
	} else {
		for i, arm := range picked {
			t0 := time.Now()
			res := massive.Run(bed, arm, cfg)
			secs := time.Since(t0).Seconds()
			rep := res.ReportOf(arm, bed.X.Cfg.Capacity, secs)
			reports[i] = rep
			if !*asJSON {
				fmt.Printf("%-8s %9.1fs  %12.0f clients/s  %2.0f B/client\n",
					arm.Name, secs, rep.ClientsPerSec, rep.BytesPerClient)
			}
		}
	}
	if !*asJSON {
		fmt.Printf("total    %9.1fs wall-clock over %d arm(s)\n",
			time.Since(wall).Seconds(), len(picked))
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "dsiload: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("\n%-8s %12s %12s %12s %12s %12s %10s %8s\n",
		"arm", "lat p50", "lat p95", "lat p99", "lat p999", "tun p50", "tun p99", "sw p99")
	for _, rep := range reports {
		fmt.Printf("%-8s %12.0f %12.0f %12.0f %12.0f %12.0f %10.0f %8.0f\n",
			rep.Name,
			rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.P999,
			rep.Tuning.P50, rep.Tuning.P99, rep.Switches.P99)
	}
	fmt.Println("\nlatency/tuning in bytes at 64B packets; state is durable bytes per client")
}

// netRX is what every network receiver flavor exposes to the load
// driver.
type netRX interface {
	dsi.Receiver
	LiveSlot() int64
	Reconnects() int64
	Feed() *netrecv.Feed
	Close()
}

// netResult is one network client's outcome.
type netResult struct {
	lat, tun   []int64 // per-query access latency / tuning time in bytes
	served     int
	reconnects int64
	lost       int64
	err        error
}

// runNet drives clients concurrent network clients against one live
// station. The catalog is bootstrapped once and shared (one index
// build); every client holds its own transport subscription, feed, and
// receiver — the per-client state a real deployment would hold.
func runNet(baseURL, transport string, clients, queries int, knnFrac float64, k int, winRatio float64, seed int64, ring, ramp int, reg *obs.Registry) {
	// A generous wait: a thousand clients subscribing against one
	// station make stream start-up contended, and a stalled stream is
	// better reported as losses than as a failed construction.
	opt := netrecv.Options{
		Registry: reg, RingSlots: ring, SSE: transport == "sse",
		WaitTimeout: 15 * time.Second,
	}
	cat, err := netrecv.Bootstrap(baseURL, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiload: %v\n", err)
		os.Exit(1)
	}
	if transport == "udp" && cat.Meta.UDP == "" {
		fmt.Fprintln(os.Stderr, "dsiload: station has no UDP transport up (run dsistation with -udp)")
		os.Exit(1)
	}
	fmt.Printf("dsiload: station %s: %s, %d channels (%s), %d slots/sec\n",
		baseURL, cat.DS.Name, cat.Lay.Channels(), cat.Meta.Scheduler, cat.Meta.SlotsPerSec)
	fmt.Printf("dsiload: %d clients x %d queries over %s\n", clients, queries, transport)

	side := cat.DS.Curve.Side()
	winSide := uint32(winRatio * float64(side))
	results := make([]netResult, clients)
	var wg sync.WaitGroup
	if ramp < 1 {
		ramp = 1
	}
	sem := make(chan struct{}, ramp)
	t0 := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			results[i] = runNetClient(baseURL, transport, cat, opt, queries, knnFrac, k, winSide, seed+int64(i), sem)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()

	var lat, tun []int64
	served, failed := 0, 0
	var reconnects, lost int64
	var firstErr error
	for _, r := range results {
		served += r.served
		reconnects += r.reconnects
		lost += r.lost
		lat = append(lat, r.lat...)
		tun = append(tun, r.tun...)
		if r.err != nil {
			failed++
			if firstErr == nil {
				firstErr = r.err
			}
		}
	}
	fmt.Printf("dsiload: %d/%d clients ok, %d queries served in %.1fs — %.0f served-queries/sec\n",
		clients-failed, clients, served, elapsed, float64(served)/elapsed)
	fmt.Printf("dsiload: reconnects %d, lost slots %d\n", reconnects, lost)
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		sort.Slice(tun, func(i, j int) bool { return tun[i] < tun[j] })
		pct := func(s []int64, p float64) int64 { return s[int(p*float64(len(s)-1))] }
		fmt.Printf("latency bytes p50/p95/p99: %d %d %d; tuning bytes p50/p95/p99: %d %d %d\n",
			pct(lat, 0.50), pct(lat, 0.95), pct(lat, 0.99),
			pct(tun, 0.50), pct(tun, 0.95), pct(tun, 0.99))
	}
	if firstErr != nil {
		fmt.Fprintf(os.Stderr, "dsiload: %d clients failed; first error: %v\n", failed, firstErr)
		os.Exit(1)
	}
}

// runNetClient subscribes one client and runs its query mix, tuning in
// at the live edge before every query like a mobile unit waking up.
// sem bounds concurrent subscriptions (released once the receiver is
// live); the queries themselves all run concurrently.
func runNetClient(baseURL, transport string, cat *netrecv.Catalog, opt netrecv.Options, queries int, knnFrac float64, k int, winSide uint32, seed int64, sem chan struct{}) netResult {
	var rx netRX
	var err error
	switch transport {
	case "http", "sse":
		rx, err = netrecv.NewHTTPReceiver(baseURL, cat, opt)
	case "udp":
		rx, err = netrecv.NewUDPReceiver(cat.Meta.UDP, -1, cat, opt)
	default:
		err = fmt.Errorf("unknown transport %q (have http, sse, udp)", transport)
	}
	<-sem
	if err != nil {
		return netResult{err: err}
	}
	defer rx.Close()
	sess, err := dsi.Open(cat.X, dsi.WithReceiver(rx))
	if err != nil {
		return netResult{err: err}
	}
	rng := rand.New(rand.NewSource(seed))
	side := cat.DS.Curve.Side()
	var res netResult
	for q := 0; q < queries; q++ {
		sess.Tune(rx.LiveSlot(), nil)
		x, y := uint32(rng.Intn(int(side))), uint32(rng.Intn(int(side)))
		if rng.Float64() < knnFrac {
			_, s := sess.KNN(spatial.Point{X: x, Y: y}, k, dsi.Conservative)
			res.lat = append(res.lat, s.LatencyBytes())
			res.tun = append(res.tun, s.TuningBytes())
		} else {
			_, s := sess.Window(spatial.ClampedWindow(x, y, winSide, side))
			res.lat = append(res.lat, s.LatencyBytes())
			res.tun = append(res.tun, s.TuningBytes())
		}
		res.served++
	}
	res.reconnects = rx.Reconnects()
	res.lost = rx.Feed().LostSlots()
	return res
}

// Command dsiload drives the event-driven replay engine at population
// scale: a configurable number of concurrent window/kNN clients — a
// million by default — replayed against the four broadcast
// organizations (classic, split, sharded, erasure-coded) at matched
// per-channel bandwidth, reporting the percentile surface per arm plus
// the engine's own throughput and per-client state budget.
//
// Usage:
//
//	dsiload                          # 1M clients, all four arms
//	dsiload -clients 250000 -arms classic,shard
//	dsiload -json                    # machine-readable reports
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dsi/internal/massive"
)

func main() {
	var (
		clients = flag.Int("clients", 1_000_000, "concurrent clients per arm")
		n       = flag.Int("n", 10000, "number of objects")
		order   = flag.Int("order", 8, "Hilbert curve order")
		seed    = flag.Int64("seed", 1, "dataset + population seed")
		objB    = flag.Int("objbytes", 1024, "object payload bytes")
		chans   = flag.Int("channels", 4, "channels of the split and sharded arms")
		knnFrac = flag.Float64("knnfrac", 0.5, "fraction of clients running kNN queries")
		k       = flag.Int("k", 5, "kNN k")
		win     = flag.Float64("win", 0.1, "window side / grid side")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		arms    = flag.String("arms", "", "comma-separated arm subset (classic,split,shard,fec); empty = all")
		asJSON  = flag.Bool("json", false, "emit reports as JSON")
	)
	flag.Parse()

	bed, err := massive.NewTestbed(massive.BedConfig{
		N: *n, Order: *order, Seed: *seed, Channels: *chans, ObjectBytes: *objB,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsiload: %v\n", err)
		os.Exit(1)
	}
	picked := bed.Arms
	if *arms != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*arms, ",") {
			want[strings.TrimSpace(name)] = true
		}
		picked = picked[:0:0]
		for _, arm := range bed.Arms {
			if want[arm.Name] {
				picked = append(picked, arm)
				delete(want, arm.Name)
			}
		}
		if len(want) > 0 || len(picked) == 0 {
			fmt.Fprintf(os.Stderr, "dsiload: unknown arms in %q (have classic,split,shard,fec)\n", *arms)
			os.Exit(1)
		}
	}

	kf := *knnFrac
	if kf == 0 {
		// Config treats a zero KNNFrac as unset (default 0.5); a negative
		// fraction expresses "window-only" without tripping the default.
		kf = -1
	}
	cfg := massive.Config{
		Clients: *clients, KNNFrac: kf, K: *k,
		WinSideRatio: *win, Seed: *seed + 1000, Workers: *workers,
	}
	fmt.Printf("dsiload: %d clients/arm over %d objects (order %d), %d-byte objects\n",
		*clients, *n, *order, *objB)

	var reports []massive.Report
	for _, arm := range picked {
		t0 := time.Now()
		res := massive.Run(bed, arm, cfg)
		secs := time.Since(t0).Seconds()
		rep := res.ReportOf(arm, bed.X.Cfg.Capacity, secs)
		reports = append(reports, rep)
		if !*asJSON {
			fmt.Printf("%-8s %9.1fs  %12.0f clients/s  %2.0f B/client\n",
				arm.Name, secs, rep.ClientsPerSec, rep.BytesPerClient)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "dsiload: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("\n%-8s %12s %12s %12s %12s %12s %10s %8s\n",
		"arm", "lat p50", "lat p95", "lat p99", "lat p999", "tun p50", "tun p99", "sw p99")
	for _, rep := range reports {
		fmt.Printf("%-8s %12.0f %12.0f %12.0f %12.0f %12.0f %10.0f %8.0f\n",
			rep.Name,
			rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.P999,
			rep.Tuning.P50, rep.Tuning.P99, rep.Switches.P99)
	}
	fmt.Println("\nlatency/tuning in bytes at 64B packets; state is durable bytes per client")
}

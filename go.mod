module dsi

go 1.24
